// Base class for simulated nodes (routers and hosts) and their interfaces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pimlib::topo {

class Network;
class Segment;

/// A network interface: an attachment point of a node to a segment.
struct Interface {
    int ifindex = -1;
    net::Ipv4Address address;
    Segment* segment = nullptr;
    bool up = true;
};

/// Abstract simulated node. Subclasses implement receive(); send() hands a
/// frame to the attached segment, which schedules delivery at the far end(s).
class Node {
public:
    Node(Network& network, std::string name, int id);
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /// Called by Segment when a frame arrives on `ifindex`.
    virtual void receive(int ifindex, const net::Packet& packet) = 0;

    /// Attaches this node to `segment` with the given address; returns the
    /// new interface index.
    int attach(Segment& segment, net::Ipv4Address address);

    /// Sends a frame out of `ifindex`. Drops silently if the interface or
    /// segment is down (the caller finds out through soft-state timeouts,
    /// exactly as a real router would).
    void send(int ifindex, const net::Frame& frame);

    [[nodiscard]] const std::vector<Interface>& interfaces() const { return interfaces_; }
    [[nodiscard]] Interface& interface(int ifindex) { return interfaces_.at(static_cast<std::size_t>(ifindex)); }
    [[nodiscard]] const Interface& interface(int ifindex) const { return interfaces_.at(static_cast<std::size_t>(ifindex)); }
    [[nodiscard]] int interface_count() const { return static_cast<int>(interfaces_.size()); }

    /// True if `addr` is the address of one of this node's interfaces.
    [[nodiscard]] bool owns_address(net::Ipv4Address addr) const;
    /// Interface index whose segment is `segment`, if any.
    [[nodiscard]] std::optional<int> ifindex_on(const Segment& segment) const;

    void set_interface_up(int ifindex, bool up);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] Network& network() { return *network_; }
    [[nodiscard]] const Network& network() const { return *network_; }
    sim::Simulator& simulator();

protected:
    Network* network_;

private:
    std::string name_;
    int id_;
    std::vector<Interface> interfaces_;
};

/// Orders node pointers by creation id instead of heap address. Every
/// long-lived container keyed by a topology pointer must use this
/// comparator: heap addresses drift with the process's allocation history,
/// so address-ordered iteration makes a nominally deterministic run depend
/// on how many simulations ran before it in the same process — replayed
/// counterexamples then fail to reproduce.
struct NodeIdLess {
    bool operator()(const Node* a, const Node* b) const {
        return a->id() < b->id();
    }
};

} // namespace pimlib::topo
