#include "topo/node.hpp"

#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::topo {

Node::Node(Network& network, std::string name, int id)
    : network_(&network), name_(std::move(name)), id_(id) {}

int Node::attach(Segment& segment, net::Ipv4Address address) {
    const int ifindex = static_cast<int>(interfaces_.size());
    interfaces_.push_back(Interface{ifindex, address, &segment, true});
    segment.add_attachment(*this, ifindex);
    return ifindex;
}

void Node::send(int ifindex, const net::Frame& frame) {
    const Interface& iface = interface(ifindex);
    if (!iface.up || iface.segment == nullptr) return;
    iface.segment->transmit(*this, frame);
}

bool Node::owns_address(net::Ipv4Address addr) const {
    for (const Interface& iface : interfaces_) {
        if (iface.address == addr) return true;
    }
    return false;
}

std::optional<int> Node::ifindex_on(const Segment& segment) const {
    for (const Interface& iface : interfaces_) {
        if (iface.segment == &segment) return iface.ifindex;
    }
    return std::nullopt;
}

void Node::set_interface_up(int ifindex, bool up) {
    Interface& iface = interface(ifindex);
    if (iface.up == up) return;
    iface.up = up;
    network_->notify_topology_changed();
}

sim::Simulator& Node::simulator() { return network_->simulator(); }

} // namespace pimlib::topo
