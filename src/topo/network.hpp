// Owns a whole simulated internetwork: the simulator clock, routers, hosts,
// segments, the address plan, and the global statistics sink. Provides the
// builder API used by tests, examples and benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "telemetry/hub.hpp"
#include "topo/host.hpp"
#include "topo/router.hpp"
#include "topo/segment.hpp"

namespace pimlib::provenance {
class Recorder;
}

namespace pimlib::topo {

class Network {
public:
    Network() = default;

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Adds a router. Its router id is 192.168.(n/256).(n%256) where n is a
    /// monotonically increasing counter — a /32 that unicast routing
    /// advertises like a loopback.
    Router& add_router(const std::string& name);

    /// Creates a point-to-point link between two routers. The segment gets
    /// the next /24 from the 10.0.0.0/8 pool; endpoints get .1 and .2.
    Segment& add_link(Router& a, Router& b, sim::Time delay = sim::kMillisecond,
                      int metric = 1);

    /// Creates a multi-access LAN attaching all `routers` (may be empty;
    /// hosts/routers can attach later via attach_to_lan).
    Segment& add_lan(const std::vector<Router*>& routers,
                     sim::Time delay = sim::kMillisecond / 10, int metric = 1);

    /// Attaches an existing router to a LAN, allocating the next host slot.
    int attach_to_lan(Router& router, Segment& lan);

    /// Adds a host on `lan`.
    Host& add_host(const std::string& name, Segment& lan);

    [[nodiscard]] const std::vector<std::unique_ptr<Router>>& routers() const { return routers_; }
    [[nodiscard]] const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
    [[nodiscard]] const std::vector<std::unique_ptr<Segment>>& segments() const { return segments_; }
    [[nodiscard]] Router& router(std::size_t i) { return *routers_.at(i); }
    [[nodiscard]] Host& host(std::size_t i) { return *hosts_.at(i); }
    [[nodiscard]] Segment& segment(std::size_t i) { return *segments_.at(i); }

    /// Finds the segment (if any) that directly connects routers a and b.
    [[nodiscard]] Segment* find_link(const Router& a, const Router& b);

    [[nodiscard]] sim::Simulator& simulator() { return sim_; }
    [[nodiscard]] stats::NetworkStats& stats() { return stats_; }
    [[nodiscard]] const stats::NetworkStats& stats() const { return stats_; }
    /// The unified observability pipeline: metrics registry, event log,
    /// span tracker and MRIB snapshot store. NetworkStats writes into the
    /// same registry, so stats() and telemetry() are two views of one sink.
    [[nodiscard]] telemetry::Hub& telemetry() { return telemetry_; }
    [[nodiscard]] const telemetry::Hub& telemetry() const { return telemetry_; }

    /// Attaches (or detaches, with nullptr) a provenance flight recorder.
    /// Registers every existing node's name with it; nodes added later
    /// register as they are created. With no recorder attached every
    /// provenance hook in the stack is a single pointer test.
    void set_provenance(provenance::Recorder* recorder);
    [[nodiscard]] provenance::Recorder* provenance() const { return provenance_; }

    /// Wiretaps: called for every frame a segment transmits (before delivery,
    /// including frames lost to injected segment loss). Several taps can
    /// coexist — e.g. a trace::PacketTracer and a fault::ConvergenceProbe —
    /// and each sees every frame in registration order.
    using PacketTap = std::function<void(const Segment&, const net::Frame&)>;
    int add_packet_tap(PacketTap tap);
    void remove_packet_tap(int token);
    [[nodiscard]] bool has_packet_taps() const { return !taps_.empty(); }
    /// Invoked by Segment::transmit; fans the frame out to every tap.
    void dispatch_packet_taps(const Segment& segment, const net::Frame& frame) const;

    /// Topology-change observers: notified whenever a segment or interface
    /// flips up/down state (not during construction). unicast::OracleRouting
    /// subscribes so a link fault re-converges every RIB the way a real
    /// (converged) unicast routing domain would (§2.7 robustness).
    using TopologyObserver = std::function<void()>;
    int add_topology_observer(TopologyObserver observer);
    void remove_topology_observer(int token);
    void notify_topology_changed();

    /// RAII coalescing for compound faults: while alive, topology-change
    /// notifications are deferred; one fires on destruction if anything
    /// changed. fault::FaultInjector wraps multi-interface faults (router
    /// crash, partition) in one batch so RIBs recompute once.
    class TopologyBatch {
    public:
        explicit TopologyBatch(Network& network) : network_(&network) {
            ++network_->topo_suspend_;
        }
        ~TopologyBatch() {
            if (--network_->topo_suspend_ == 0 && network_->topo_dirty_) {
                network_->topo_dirty_ = false;
                network_->notify_topology_changed();
            }
        }
        TopologyBatch(const TopologyBatch&) = delete;
        TopologyBatch& operator=(const TopologyBatch&) = delete;

    private:
        Network* network_;
    };

    /// Runs the simulation for `duration` of simulated time.
    void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }

    /// Global RNG seed for every derived random stream in the network
    /// (segment loss, IGMP host report spread, ...). Setting it re-seeds the
    /// loss RNG of every existing segment, so it can be applied at any point
    /// before the run. Seed 0 (the default) keeps the legacy per-object
    /// derivation, so existing scenarios replay unchanged.
    void set_seed(std::uint64_t seed);
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// A per-object RNG seed derived from the global seed. `legacy_salt`
    /// reproduces the historical `salt * 2654435761 + 1` stream when the
    /// global seed is 0; `stream_tag` decorrelates object classes (segments,
    /// host agents, ...) when a global seed is set (splitmix64 mix).
    [[nodiscard]] std::uint32_t derived_seed(std::uint32_t legacy_salt,
                                             std::uint64_t stream_tag) const;

    /// Stream-tag bases for derived_seed (add the object's id).
    static constexpr std::uint64_t kSegmentStreamTag = 0x5e67'0000'0000ull;
    static constexpr std::uint64_t kHostAgentStreamTag = 0xa63e'0000'0000ull;

private:
    net::Prefix next_segment_prefix();

    friend class TopologyBatch;

    sim::Simulator sim_;
    // Declaration order matters: the hub is bound to sim_, and stats_ writes
    // into the hub's registry.
    telemetry::Hub telemetry_{sim_};
    stats::NetworkStats stats_{telemetry_.registry()};
    provenance::Recorder* provenance_ = nullptr;
    std::map<int, PacketTap> taps_;
    int next_tap_token_ = 1;
    std::map<int, TopologyObserver> topo_observers_;
    int next_topo_token_ = 1;
    int topo_suspend_ = 0;
    bool topo_dirty_ = false;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Segment>> segments_;
    int next_segment_number_ = 0;
    int next_node_id_ = 0;
    int next_router_number_ = 1;
    std::uint64_t seed_ = 0;
};

} // namespace pimlib::topo
