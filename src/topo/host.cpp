#include "topo/host.hpp"

#include "provenance/provenance.hpp"
#include "topo/network.hpp"

namespace pimlib::topo {
namespace {

/// Host-side provenance records bracket every trace: kOrigin when the
/// source puts the packet on its LAN, kDeliver when a member consumes it.
void record_endpoint(Network& network, const Host& host, const net::Packet& packet,
                     provenance::EntryKind kind) {
    provenance::Recorder* rec = network.provenance();
    if (rec == nullptr || !rec->enabled() || packet.pid == 0) return;
    provenance::HopRecord* hop = rec->begin(host.id());
    if (hop == nullptr) return;
    hop->pid = packet.pid;
    hop->at = network.simulator().now();
    hop->src = packet.src;
    hop->group = packet.dst;
    hop->seq = packet.seq;
    hop->kind = kind;
    hop->ttl = packet.ttl;
    rec->commit(*hop);
}

} // namespace

Host::Host(Network& network, std::string name, int id)
    : Node(network, std::move(name), id) {}

void Host::receive(int ifindex, const net::Packet& packet) {
    if (packet.proto == net::IpProto::kUdp && packet.dst.is_multicast() &&
        !packet.dst.is_link_local_multicast()) {
        const net::GroupAddress group{packet.dst};
        if (is_member(group)) {
            received_.push_back(ReceivedRecord{packet.src, group, packet.seq,
                                               network_->simulator().now()});
            network_->stats().count_data_delivered();
            network_->telemetry().on_data_delivered(name(), group.to_string());
            record_endpoint(*network_, *this, packet, provenance::EntryKind::kDeliver);
            if (data_observer_) data_observer_(received_.back());
        }
        return;
    }
    if (control_handler_) control_handler_(ifindex, packet);
}

void Host::send_data(net::GroupAddress group, std::size_t payload_size) {
    net::Packet packet;
    packet.src = address();
    packet.dst = group.address();
    packet.proto = net::IpProto::kUdp;
    packet.ttl = 64;
    packet.payload.assign(payload_size, 0xAB);
    packet.seq = ++next_seq_[group.address().to_uint()];
    packet.pid = provenance::packet_id(packet.src, packet.dst, packet.seq);
    record_endpoint(*network_, *this, packet, provenance::EntryKind::kOrigin);
    send(0, net::Frame{std::nullopt, std::move(packet)});
}

void Host::send_stream(net::GroupAddress group, int count, sim::Time interval,
                       sim::Time start) {
    for (int i = 0; i < count; ++i) {
        simulator().schedule(start + i * interval, [this, group] { send_data(group); });
    }
}

std::size_t Host::received_count(net::GroupAddress group) const {
    std::size_t n = 0;
    for (const auto& rec : received_) {
        if (rec.group == group) ++n;
    }
    return n;
}

std::size_t Host::received_count_from(net::Ipv4Address source, net::GroupAddress group) const {
    std::size_t n = 0;
    for (const auto& rec : received_) {
        if (rec.group == group && rec.source == source) ++n;
    }
    return n;
}

std::size_t Host::duplicate_count() const {
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
    std::size_t dups = 0;
    for (const auto& rec : received_) {
        auto key = std::make_tuple(rec.source.to_uint(), rec.group.address().to_uint(), rec.seq);
        if (!seen.insert(key).second) ++dups;
    }
    return dups;
}

} // namespace pimlib::topo
