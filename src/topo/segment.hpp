// A transmission segment: either a point-to-point link (two attachments) or
// a multi-access LAN (any number). Frames transmitted on a segment are
// delivered to the other attachments after the propagation delay; unicast
// link destinations deliver to exactly the owning attachment.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pimlib::topo {

class Network;
class Node;

class Segment {
public:
    Segment(Network& network, int id, net::Prefix prefix, sim::Time delay, int metric);

    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;

    /// Transmits from `sender` to the other attachments. Multicast/broadcast
    /// frames (no link_dst) go to everyone else; unicast frames only to the
    /// attachment owning link_dst. Dropped if the segment is down.
    void transmit(const Node& sender, const net::Frame& frame);

    /// Takes the segment down (frames silently vanish) or back up. A state
    /// change notifies the network's topology observers so unicast routing
    /// recomputes, exactly as a converged routing domain would react.
    void set_up(bool up);
    [[nodiscard]] bool is_up() const { return up_; }

    /// Per-frame probabilistic loss in [0,1): every transmitted frame is
    /// dropped with probability `rate` before any delivery (the whole wire
    /// loses it, not one station). Deterministic per-segment RNG so fault
    /// scenarios replay identically.
    void set_loss_rate(double rate);
    /// Restarts the loss RNG stream; called by Network::set_seed so one
    /// global seed makes whole runs reproducible end-to-end.
    void reseed_loss(std::uint32_t seed) { loss_rng_.seed(seed); }
    [[nodiscard]] double loss_rate() const { return loss_rate_; }
    /// Frames dropped by injected loss so far.
    [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }

    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] net::Prefix prefix() const { return prefix_; }
    [[nodiscard]] sim::Time delay() const { return delay_; }
    [[nodiscard]] int metric() const { return metric_; }
    [[nodiscard]] bool is_lan() const { return attachments_.size() > 2; }

    struct Attachment {
        Node* node;
        int ifindex;
    };
    [[nodiscard]] const std::vector<Attachment>& attachments() const { return attachments_; }
    /// Nodes attached to this segment other than `node`.
    [[nodiscard]] std::vector<Node*> peers_of(const Node& node) const;

private:
    friend class Node; // Node::attach registers the attachment
    void add_attachment(Node& node, int ifindex);
    void deliver(const Attachment& to, const net::Packet& packet);

    Network* network_;
    int id_;
    net::Prefix prefix_;
    sim::Time delay_;
    int metric_;
    bool up_ = true;
    double loss_rate_ = 0.0;
    std::uint64_t frames_lost_ = 0;
    std::mt19937 loss_rng_;
    std::vector<Attachment> attachments_;
};

} // namespace pimlib::topo
