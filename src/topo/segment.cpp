#include "topo/segment.hpp"

#include "provenance/provenance.hpp"
#include "topo/network.hpp"
#include "topo/node.hpp"

namespace pimlib::topo {
namespace {

/// Both loss paths (checker-forced and injected) destroy the frame on the
/// wire: record the drop against the sender, naming the segment.
void record_segment_loss(Network& network, const Node& sender, int segment_id,
                         const net::Packet& packet) {
    provenance::Recorder* rec = network.provenance();
    if (rec == nullptr || !rec->enabled() || packet.pid == 0) return;
    provenance::HopRecord hop;
    hop.pid = packet.pid;
    hop.at = network.simulator().now();
    hop.node = sender.id();
    hop.segment = segment_id;
    hop.src = packet.src;
    hop.group = packet.dst;
    hop.seq = packet.seq;
    hop.drop = provenance::DropReason::kSegmentLoss;
    hop.ttl = packet.ttl;
    rec->append(hop);
}

} // namespace

Segment::Segment(Network& network, int id, net::Prefix prefix, sim::Time delay, int metric)
    : network_(&network), id_(id), prefix_(prefix), delay_(delay), metric_(metric),
      loss_rng_(network.derived_seed(
          static_cast<std::uint32_t>(id),
          Network::kSegmentStreamTag + static_cast<std::uint64_t>(id))) {}

void Segment::add_attachment(Node& node, int ifindex) {
    attachments_.push_back(Attachment{&node, ifindex});
}

std::vector<Node*> Segment::peers_of(const Node& node) const {
    std::vector<Node*> out;
    for (const Attachment& att : attachments_) {
        if (att.node != &node) out.push_back(att.node);
    }
    return out;
}

void Segment::set_up(bool up) {
    if (up_ == up) return;
    up_ = up;
    network_->notify_topology_changed();
}

void Segment::set_loss_rate(double rate) {
    loss_rate_ = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
}

void Segment::transmit(const Node& sender, const net::Frame& frame) {
    if (!up_) return;

    if (network_->has_packet_taps()) network_->dispatch_packet_taps(*this, frame);

    // Account the transmission once per segment crossing (a LAN multicast
    // counts once no matter how many stations hear it, like a real wire).
    if (frame.packet.proto == net::IpProto::kUdp) {
        network_->stats().count_data_packet(id_);
        if (frame.packet.is_multicast()) {
            network_->stats().note_flow(id_, frame.packet.src,
                                        net::GroupAddress{frame.packet.dst});
        }
    } else {
        network_->stats().count_control_on_segment(id_);
    }

    // Checker-driven loss: with a choice source installed, every
    // transmission is a decision point — alternative 0 delivers, alternative
    // 1 vanishes on the wire. The checker bounds how many drop branches it
    // actually explores; without a source this path is never taken.
    if (sim::ChoiceSource* choices = network_->simulator().choice_source()) {
        if (choices->choose(
                2, sim::ChoicePoint{sim::ChoicePoint::Kind::kFrameLoss, id_,
                                    frame.packet.proto != net::IpProto::kUdp}) ==
            1) {
            ++frames_lost_;
            network_->stats().count_dropped_loss();
            record_segment_loss(*network_, sender, id_, frame.packet);
            return;
        }
    }

    // Injected loss: the transmission happened (and was accounted and
    // tapped), but no station hears it.
    if (loss_rate_ > 0.0) {
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        if (coin(loss_rng_) < loss_rate_) {
            ++frames_lost_;
            network_->stats().count_dropped_loss();
            record_segment_loss(*network_, sender, id_, frame.packet);
            return;
        }
    }

    for (const Attachment& att : attachments_) {
        if (att.node == &sender) continue;
        if (frame.link_dst.has_value() &&
            att.node->interface(att.ifindex).address != *frame.link_dst) {
            continue;
        }
        deliver(att, frame.packet);
    }
}

void Segment::deliver(const Attachment& to, const net::Packet& packet) {
    Node* node = to.node;
    const int ifindex = to.ifindex;
    net::Packet copy = packet;
    network_->simulator().schedule(delay_, [this, node, ifindex, copy = std::move(copy)] {
        if (!up_) return;
        if (!node->interface(ifindex).up) return;
        node->receive(ifindex, copy);
    });
}

} // namespace pimlib::topo
