#include "topo/router.hpp"

#include "provenance/provenance.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::topo {
namespace {

/// Unicast legs matter to provenance only when the packet carries a pid —
/// i.e. it is (or encapsulates) a traced data packet, like a PIM Register
/// tunnelling toward the RP.
void record_unicast_leg(Network& network, const Router& router, const net::Packet& packet,
                        int oif, provenance::DropReason drop) {
    provenance::Recorder* rec = network.provenance();
    if (rec == nullptr || !rec->enabled() || packet.pid == 0) return;
    provenance::HopRecord hop;
    hop.pid = packet.pid;
    hop.at = network.simulator().now();
    hop.node = router.id();
    hop.iif = -1;
    hop.src = packet.src;
    hop.group = packet.dst;
    hop.seq = packet.seq;
    hop.kind = provenance::EntryKind::kUnicast;
    hop.drop = drop;
    hop.ttl = packet.ttl;
    if (drop == provenance::DropReason::kNone && oif >= 0) hop.add_oif(oif);
    rec->append(hop);
}

} // namespace

Router::Router(Network& network, std::string name, int id, net::Ipv4Address router_id)
    : Node(network, std::move(name), id), router_id_(router_id) {}

bool Router::is_local_address(net::Ipv4Address addr) const {
    return addr == router_id_ || owns_address(addr);
}

std::optional<RouteLookupResult> Router::route_to(net::Ipv4Address dst) const {
    if (unicast_ == nullptr) return std::nullopt;
    return unicast_->lookup(dst);
}

std::optional<int> Router::rpf_interface(net::Ipv4Address source) const {
    auto route = route_to(source);
    if (!route) return std::nullopt;
    return route->ifindex;
}

std::optional<net::Ipv4Address> Router::rpf_neighbor(net::Ipv4Address dst) const {
    auto route = route_to(dst);
    if (!route) return std::nullopt;
    return route->next_hop.is_unspecified() ? std::optional<net::Ipv4Address>{}
                                            : std::optional<net::Ipv4Address>{route->next_hop};
}

void Router::register_protocol(net::IpProto proto, PacketHandler handler) {
    handlers_[proto] = std::move(handler);
}

void Router::register_igmp_type(std::uint8_t type_code, PacketHandler handler) {
    igmp_handlers_[type_code] = std::move(handler);
}

void Router::receive(int ifindex, const net::Packet& packet) {
    if (packet.dst.is_multicast()) {
        if (packet.dst.is_link_local_multicast() || packet.proto != net::IpProto::kUdp) {
            // Link-local control, and control protocols multicasting on a
            // LAN (e.g. IGMP reports addressed to the group itself): local
            // delivery only, never forwarded.
            deliver_local(ifindex, packet);
            return;
        }
        // Wide-area multicast: the multicast routing protocol's data plane
        // decides forwarding *and* local delivery (e.g. an RP consuming data
        // to learn of sources).
        if (mcast_ != nullptr) mcast_->on_multicast_data(ifindex, packet);
        return;
    }
    if (is_local_address(packet.dst)) {
        deliver_local(ifindex, packet);
        return;
    }
    forward_unicast(packet);
}

void Router::deliver_local(int ifindex, const net::Packet& packet) {
    if (packet.proto == net::IpProto::kIgmp) {
        if (packet.payload.empty()) return;
        auto it = igmp_handlers_.find(packet.payload.front());
        if (it != igmp_handlers_.end()) it->second(ifindex, packet);
        return;
    }
    auto it = handlers_.find(packet.proto);
    if (it != handlers_.end()) it->second(ifindex, packet);
}

void Router::forward_unicast(net::Packet packet) {
    if (packet.ttl <= 1) {
        network_->stats().count_data_dropped_ttl();
        record_unicast_leg(*network_, *this, packet, -1, provenance::DropReason::kTtl);
        return;
    }
    packet.ttl -= 1;
    auto route = route_to(packet.dst);
    if (!route) {
        network_->stats().count_data_dropped_no_route();
        record_unicast_leg(*network_, *this, packet, -1, provenance::DropReason::kNoRoute);
        return;
    }
    record_unicast_leg(*network_, *this, packet, route->ifindex,
                       provenance::DropReason::kNone);
    const net::Ipv4Address hop = route->next_hop.is_unspecified() ? packet.dst : route->next_hop;
    send(route->ifindex, net::Frame{hop, std::move(packet)});
}

void Router::originate_unicast(net::Packet packet) {
    if (is_local_address(packet.dst)) {
        // Local loopback (e.g. a router registering with itself as RP).
        deliver_local(/*ifindex=*/-1, packet);
        return;
    }
    auto route = route_to(packet.dst);
    if (!route) {
        network_->stats().count_data_dropped_no_route();
        record_unicast_leg(*network_, *this, packet, -1, provenance::DropReason::kNoRoute);
        return;
    }
    if (packet.src.is_unspecified()) packet.src = interface(route->ifindex).address;
    const net::Ipv4Address hop = route->next_hop.is_unspecified() ? packet.dst : route->next_hop;
    send(route->ifindex, net::Frame{hop, std::move(packet)});
}

void Router::send_on(int ifindex, std::optional<net::Ipv4Address> next_hop,
                     const net::Packet& packet) {
    net::Packet copy = packet;
    if (copy.src.is_unspecified()) copy.src = interface(ifindex).address;
    send(ifindex, net::Frame{next_hop, std::move(copy)});
}

} // namespace pimlib::topo
