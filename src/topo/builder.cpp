#include "topo/builder.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pimlib::topo {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
    throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
        if (token.front() == '#') break;
        tokens.push_back(token);
    }
    return tokens;
}

/// Parses "delay=5ms" / "delay=250us" / "metric=3" style options.
struct LinkOptions {
    sim::Time delay = sim::kMillisecond;
    int metric = 1;
};

LinkOptions parse_link_options(int line, const std::vector<std::string>& tokens,
                               std::size_t from) {
    LinkOptions opts;
    for (std::size_t i = from; i < tokens.size(); ++i) {
        const std::string& t = tokens[i];
        const auto eq = t.find('=');
        if (eq == std::string::npos) fail(line, "expected key=value, got '" + t + "'");
        const std::string key = t.substr(0, eq);
        const std::string value = t.substr(eq + 1);
        if (key == "metric") {
            int metric = 0;
            auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), metric);
            if (ec != std::errc{} || p != value.data() + value.size() || metric <= 0) {
                fail(line, "bad metric '" + value + "'");
            }
            opts.metric = metric;
        } else if (key == "delay") {
            long long amount = 0;
            auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), amount);
            if (ec != std::errc{} || amount < 0) fail(line, "bad delay '" + value + "'");
            const std::string unit(p, value.data() + value.size());
            if (unit == "ms") {
                opts.delay = amount * sim::kMillisecond;
            } else if (unit == "us") {
                opts.delay = amount * sim::kMicrosecond;
            } else if (unit == "s") {
                opts.delay = amount * sim::kSecond;
            } else {
                fail(line, "bad delay unit '" + unit + "' (use s, ms or us)");
            }
        } else {
            fail(line, "unknown option '" + key + "'");
        }
    }
    return opts;
}

} // namespace

TopologyBuilder TopologyBuilder::parse(Network& network, std::string_view spec) {
    TopologyBuilder b(network);
    std::istringstream input{std::string(spec)};
    std::string raw;
    int line = 0;
    while (std::getline(input, raw)) {
        ++line;
        const auto tokens = tokenize(raw);
        if (tokens.empty()) continue;
        const std::string& directive = tokens.front();

        auto need_router = [&](const std::string& name) -> Router& {
            auto it = b.routers_.find(name);
            if (it == b.routers_.end()) fail(line, "unknown router '" + name + "'");
            return *it->second;
        };
        auto need_lan = [&](const std::string& name) -> Segment& {
            auto it = b.lans_.find(name);
            if (it == b.lans_.end()) fail(line, "unknown lan '" + name + "'");
            return *it->second;
        };
        auto fresh_name = [&](const std::string& name) {
            if (b.routers_.contains(name) || b.hosts_.contains(name) ||
                b.lans_.contains(name)) {
                fail(line, "duplicate name '" + name + "'");
            }
        };

        if (directive == "router") {
            if (tokens.size() < 2) fail(line, "router needs at least one name");
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                fresh_name(tokens[i]);
                b.routers_[tokens[i]] = &network.add_router(tokens[i]);
            }
        } else if (directive == "lan") {
            if (tokens.size() < 2) fail(line, "lan needs a name");
            fresh_name(tokens[1]);
            std::vector<Router*> attached;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                attached.push_back(&need_router(tokens[i]));
            }
            b.lans_[tokens[1]] = &network.add_lan(attached);
        } else if (directive == "host") {
            if (tokens.size() != 3) fail(line, "usage: host NAME LAN");
            fresh_name(tokens[1]);
            b.hosts_[tokens[1]] = &network.add_host(tokens[1], need_lan(tokens[2]));
        } else if (directive == "link") {
            if (tokens.size() < 3) fail(line, "usage: link A B [delay=..] [metric=..]");
            Router& a = need_router(tokens[1]);
            Router& bb = need_router(tokens[2]);
            if (&a == &bb) fail(line, "link endpoints must differ");
            const LinkOptions opts = parse_link_options(line, tokens, 3);
            network.add_link(a, bb, opts.delay, opts.metric);
        } else if (directive == "attach") {
            if (tokens.size() != 3) fail(line, "usage: attach ROUTER LAN");
            network.attach_to_lan(need_router(tokens[1]), need_lan(tokens[2]));
        } else {
            fail(line, "unknown directive '" + directive + "'");
        }
    }
    return b;
}

Router& TopologyBuilder::router(const std::string& name) const {
    auto it = routers_.find(name);
    if (it == routers_.end()) throw std::out_of_range("no router named " + name);
    return *it->second;
}

Host& TopologyBuilder::host(const std::string& name) const {
    auto it = hosts_.find(name);
    if (it == hosts_.end()) throw std::out_of_range("no host named " + name);
    return *it->second;
}

Segment& TopologyBuilder::lan(const std::string& name) const {
    auto it = lans_.find(name);
    if (it == lans_.end()) throw std::out_of_range("no lan named " + name);
    return *it->second;
}

Segment& TopologyBuilder::link(const std::string& a, const std::string& b) const {
    Segment* segment = network_->find_link(router(a), router(b));
    if (segment == nullptr) {
        throw std::out_of_range("no link between " + a + " and " + b);
    }
    return *segment;
}

} // namespace pimlib::topo
