// A simulated router: demultiplexes received packets to protocol handlers,
// forwards unicast packets via a pluggable route-lookup interface, and hands
// multicast data to the registered multicast data plane.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "topo/node.hpp"

namespace pimlib::topo {

/// Result of a unicast route lookup.
struct RouteLookupResult {
    int ifindex = -1;
    net::Ipv4Address next_hop; // unspecified => destination is on-link
    int metric = 0;
};

/// Pluggable unicast forwarding/RPF lookup. Implemented by unicast::Rib;
/// this interface is what makes the multicast protocols
/// "protocol independent" — they never see how routes were computed.
class UnicastLookup {
public:
    virtual ~UnicastLookup() = default;
    [[nodiscard]] virtual std::optional<RouteLookupResult> lookup(net::Ipv4Address dst) const = 0;

    /// Route-change subscription (§3.8 of the paper: PIM re-homes its trees
    /// when unicast routing changes). Providers that never change routes may
    /// keep the default no-op implementation.
    virtual int subscribe_changes(std::function<void()> observer) {
        (void)observer;
        return 0;
    }
    virtual void unsubscribe_changes(int token) { (void)token; }
};

/// Receiver of multicast data packets (non-link-local class-D destinations).
/// Implemented by mcast::DataPlane.
class MulticastDataHandler {
public:
    virtual ~MulticastDataHandler() = default;
    virtual void on_multicast_data(int ifindex, const net::Packet& packet) = 0;
};

class Router : public Node {
public:
    Router(Network& network, std::string name, int id, net::Ipv4Address router_id);

    void receive(int ifindex, const net::Packet& packet) override;

    /// Sends a locally originated unicast packet (consults the route table).
    void originate_unicast(net::Packet packet);
    /// Sends a packet out a specific interface to a specific link-layer
    /// neighbor (next_hop unset => link-layer multicast/broadcast).
    void send_on(int ifindex, std::optional<net::Ipv4Address> next_hop, const net::Packet& packet);

    /// Registers a handler for an IP protocol (non-IGMP control planes).
    using PacketHandler = std::function<void(int ifindex, const net::Packet&)>;
    void register_protocol(net::IpProto proto, PacketHandler handler);

    /// IGMP demultiplex: the 1994 protocol family (IGMP itself, PIM, DVMRP)
    /// shares IP protocol 2 and is distinguished by the first payload byte.
    void register_igmp_type(std::uint8_t type_code, PacketHandler handler);

    void set_unicast(UnicastLookup* lookup) { unicast_ = lookup; }
    [[nodiscard]] UnicastLookup* unicast() const { return unicast_; }
    void set_multicast_handler(MulticastDataHandler* handler) { mcast_ = handler; }

    /// The router's stable identifier address (a /32 advertised into unicast
    /// routing; used as the RP address when this router is an RP).
    [[nodiscard]] net::Ipv4Address router_id() const { return router_id_; }

    /// True if `addr` is any interface address or the router id.
    [[nodiscard]] bool is_local_address(net::Ipv4Address addr) const;

    /// Unicast route lookup convenience; nullopt when no route.
    [[nodiscard]] std::optional<RouteLookupResult> route_to(net::Ipv4Address dst) const;

    /// RPF helper: the interface this router would use to send toward
    /// `source` (i.e. the expected incoming interface for packets from it).
    [[nodiscard]] std::optional<int> rpf_interface(net::Ipv4Address source) const;
    /// The link-layer next hop toward `dst` (for addressing joins to the
    /// correct upstream neighbor on a LAN). Unspecified address => on-link.
    [[nodiscard]] std::optional<net::Ipv4Address> rpf_neighbor(net::Ipv4Address dst) const;

private:
    void forward_unicast(net::Packet packet);
    void deliver_local(int ifindex, const net::Packet& packet);

    net::Ipv4Address router_id_;
    UnicastLookup* unicast_ = nullptr;
    MulticastDataHandler* mcast_ = nullptr;
    std::map<net::IpProto, PacketHandler> handlers_;
    std::map<std::uint8_t, PacketHandler> igmp_handlers_;
};

} // namespace pimlib::topo
