// DVMRP baseline (RFC 1075 flavor): truncated reverse-path broadcasting with
// prunes, prune-lifetime regrowth, and grafts. This is the protocol whose
// "occasional broadcasting behavior severely limits its capability to scale"
// (§1.1) — the bench fig1_overhead quantifies exactly that against PIM.
//
// Substitution note (DESIGN.md): real DVMRP runs its own RIP-like unicast
// routing exchange; here it performs RPF against the router's RIB, which in
// scenarios is filled by our distance-vector provider — the same information
// a native DVMRP exchange would compute.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>

#include "igmp/router_agent.hpp"
#include "mcast/forwarding_cache.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::dvmrp {

/// DVMRP message subcodes (carried as IGMP type 0x13).
enum class Code : std::uint8_t {
    kProbe = 1, // neighbor discovery
    kPrune = 2,
    kGraft = 3,
};

struct Probe {
    std::uint32_t holdtime_ms = 0;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<Probe> decode(std::span<const std::uint8_t> bytes);
};

struct PruneMsg {
    net::Ipv4Address source;
    net::Ipv4Address group;
    std::uint32_t lifetime_ms = 0;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<PruneMsg> decode(std::span<const std::uint8_t> bytes);
};

struct GraftMsg {
    net::Ipv4Address source;
    net::Ipv4Address group;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<GraftMsg> decode(std::span<const std::uint8_t> bytes);
};

[[nodiscard]] std::optional<Code> peek_code(std::span<const std::uint8_t> bytes);

struct DvmrpConfig {
    sim::Time prune_lifetime = 120 * sim::kSecond;
    sim::Time probe_interval = 10 * sim::kSecond;
    sim::Time neighbor_holdtime = 35 * sim::kSecond;
    sim::Time entry_lifetime = 120 * sim::kSecond;

    [[nodiscard]] DvmrpConfig scaled(double factor) const;
};

class DvmrpRouter final : public mcast::DataPlane::Delegate {
public:
    DvmrpRouter(topo::Router& router, igmp::RouterAgent& igmp, DvmrpConfig config = {});

    DvmrpRouter(const DvmrpRouter&) = delete;
    DvmrpRouter& operator=(const DvmrpRouter&) = delete;

    [[nodiscard]] mcast::ForwardingCache& cache() { return cache_; }
    [[nodiscard]] std::vector<net::Ipv4Address> neighbors_on(int ifindex) const;

    void on_no_entry(int ifindex, const net::Packet& packet) override;
    void on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) override;

private:
    using SgKey = std::pair<net::Ipv4Address, net::GroupAddress>;

    void on_message(int ifindex, const net::Packet& packet);
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void on_tick();
    void send_probes();
    mcast::ForwardingEntry* build_entry(net::Ipv4Address source, net::GroupAddress group);
    void send_prune_upstream(const mcast::ForwardingEntry& entry);
    void send_graft_upstream(const mcast::ForwardingEntry& entry);
    [[nodiscard]] bool floods_to(int ifindex, net::GroupAddress group) const;

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    DvmrpConfig config_;
    mcast::ForwardingCache cache_;
    mcast::DataPlane data_plane_;

    std::map<int, std::map<net::Ipv4Address, sim::Time>> neighbors_;
    std::map<std::pair<SgKey, int>, sim::Time> prunes_;
    std::set<SgKey> pruned_upstream_;
    std::map<SgKey, sim::Time> last_prune_sent_;

    sim::PeriodicTimer probe_timer_;
    sim::PeriodicTimer tick_timer_;
};

} // namespace pimlib::dvmrp
