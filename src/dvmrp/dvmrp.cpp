#include "dvmrp/dvmrp.hpp"

#include "igmp/messages.hpp"
#include "net/buffer.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::dvmrp {

namespace {
void put_header(net::BufWriter& w, Code code) {
    w.put_u8(igmp::kTypeDvmrp);
    w.put_u8(static_cast<std::uint8_t>(code));
}

bool check_header(net::BufReader& r, Code code) {
    auto type = r.get_u8();
    auto c = r.get_u8();
    return type && c && *type == igmp::kTypeDvmrp &&
           *c == static_cast<std::uint8_t>(code);
}
} // namespace

std::optional<Code> peek_code(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 2 || bytes[0] != igmp::kTypeDvmrp) return std::nullopt;
    if (bytes[1] < 1 || bytes[1] > 3) return std::nullopt;
    return static_cast<Code>(bytes[1]);
}

std::vector<std::uint8_t> Probe::encode() const {
    net::BufWriter w(6);
    put_header(w, Code::kProbe);
    w.put_u32(holdtime_ms);
    return w.take();
}

std::optional<Probe> Probe::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kProbe)) return std::nullopt;
    auto holdtime = r.get_u32();
    if (!holdtime || !r.at_end()) return std::nullopt;
    return Probe{*holdtime};
}

std::vector<std::uint8_t> PruneMsg::encode() const {
    net::BufWriter w(14);
    put_header(w, Code::kPrune);
    w.put_addr(source);
    w.put_addr(group);
    w.put_u32(lifetime_ms);
    return w.take();
}

std::optional<PruneMsg> PruneMsg::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kPrune)) return std::nullopt;
    auto source = r.get_addr();
    auto group = r.get_addr();
    auto lifetime = r.get_u32();
    if (!source || !group || !lifetime || !r.at_end()) return std::nullopt;
    return PruneMsg{*source, *group, *lifetime};
}

std::vector<std::uint8_t> GraftMsg::encode() const {
    net::BufWriter w(10);
    put_header(w, Code::kGraft);
    w.put_addr(source);
    w.put_addr(group);
    return w.take();
}

std::optional<GraftMsg> GraftMsg::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kGraft)) return std::nullopt;
    auto source = r.get_addr();
    auto group = r.get_addr();
    if (!source || !group || !r.at_end()) return std::nullopt;
    return GraftMsg{*source, *group};
}

DvmrpConfig DvmrpConfig::scaled(double factor) const {
    auto scale = [factor](sim::Time t) {
        return static_cast<sim::Time>(static_cast<double>(t) * factor);
    };
    DvmrpConfig out = *this;
    out.prune_lifetime = scale(prune_lifetime);
    out.probe_interval = scale(probe_interval);
    out.neighbor_holdtime = scale(neighbor_holdtime);
    out.entry_lifetime = scale(entry_lifetime);
    return out;
}

DvmrpRouter::DvmrpRouter(topo::Router& router, igmp::RouterAgent& igmp,
                         DvmrpConfig config)
    : router_(&router),
      igmp_(&igmp),
      config_(config),
      data_plane_(router, cache_),
      probe_timer_(router.simulator(), [this] {
          const sim::Time now = router_->simulator().now();
          for (auto& [ifindex, nbrs] : neighbors_) {
              std::erase_if(nbrs, [now](const auto& kv) { return kv.second <= now; });
          }
          send_probes();
      }),
      tick_timer_(router.simulator(), [this] { on_tick(); }) {
    data_plane_.set_delegate(this);
    router_->register_igmp_type(igmp::kTypeDvmrp,
                                [this](int ifindex, const net::Packet& packet) {
                                    on_message(ifindex, packet);
                                });
    igmp_->subscribe([this](int ifindex, net::GroupAddress group, bool present) {
        on_membership(ifindex, group, present);
    });
    probe_timer_.start(config_.probe_interval);
    tick_timer_.start(config_.prune_lifetime / 3);
    router_->simulator().schedule(0, [this] { send_probes(); });
}

void DvmrpRouter::send_probes() {
    const auto holdtime =
        static_cast<std::uint32_t>(config_.neighbor_holdtime / sim::kMillisecond);
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kIgmp;
        packet.ttl = 1;
        packet.payload = Probe{holdtime}.encode();
        router_->network().stats().count_control_message("dvmrp");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

std::vector<net::Ipv4Address> DvmrpRouter::neighbors_on(int ifindex) const {
    std::vector<net::Ipv4Address> out;
    auto it = neighbors_.find(ifindex);
    if (it == neighbors_.end()) return out;
    for (const auto& [addr, deadline] : it->second) out.push_back(addr);
    return out;
}

bool DvmrpRouter::floods_to(int ifindex, net::GroupAddress group) const {
    auto it = neighbors_.find(ifindex);
    const bool has_neighbors = it != neighbors_.end() && !it->second.empty();
    return has_neighbors || igmp_->has_members(ifindex, group);
}

mcast::ForwardingEntry* DvmrpRouter::build_entry(net::Ipv4Address source,
                                                 net::GroupAddress group) {
    auto route = router_->route_to(source);
    if (!route) return nullptr;
    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry& sg = cache_.ensure_sg(source, group);
    sg.set_iif(route->ifindex);
    sg.set_upstream_neighbor(route->next_hop.is_unspecified()
                                 ? std::optional<net::Ipv4Address>{}
                                 : std::optional<net::Ipv4Address>{route->next_hop});
    sg.set_spt_bit(true);
    sg.set_delete_at(now + config_.entry_lifetime);
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        if (iface.ifindex == sg.iif()) continue;
        if (!floods_to(iface.ifindex, group)) continue;
        if (prunes_.contains({{source, group}, iface.ifindex})) continue;
        sg.pin_oif(iface.ifindex); // flood state: stays until pruned
    }
    return &sg;
}

void DvmrpRouter::on_no_entry(int ifindex, const net::Packet& packet) {
    const net::GroupAddress group{packet.dst};
    mcast::ForwardingEntry* sg = build_entry(packet.src, group);
    if (sg == nullptr) {
        data_plane_.record_hop(ifindex, packet, nullptr, provenance::EntryKind::kNone,
                               /*rpf_ok=*/false, provenance::DropReason::kNoState);
        return;
    }
    if (ifindex != sg->iif()) {
        router_->network().stats().count_data_dropped_iif();
        data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                               /*rpf_ok=*/false, provenance::DropReason::kRpfFail);
        return;
    }
    const sim::Time now = router_->simulator().now();
    data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                           /*rpf_ok=*/true, provenance::DropReason::kNone);
    data_plane_.replicate(*sg, ifindex, packet);
    sg->note_data(now);
    if (sg->oif_list_empty(now) && sg->upstream_neighbor().has_value()) {
        send_prune_upstream(*sg);
        pruned_upstream_.insert({packet.src, group});
    }
}

void DvmrpRouter::on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                                   const net::Packet& packet) {
    (void)ifindex;
    (void)packet;
    if (!entry.upstream_neighbor().has_value()) return;
    const SgKey key{entry.source_or_rp(), entry.group()};
    const sim::Time now = router_->simulator().now();
    auto it = last_prune_sent_.find(key);
    if (it != last_prune_sent_.end() && now - it->second < config_.prune_lifetime / 3) {
        return;
    }
    last_prune_sent_[key] = now;
    send_prune_upstream(entry);
    pruned_upstream_.insert(key);
}

void DvmrpRouter::on_message(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.dvmrp");
    auto code = peek_code(packet.payload);
    if (!code) return;
    const sim::Time now = router_->simulator().now();
    switch (*code) {
    case Code::kProbe: {
        auto msg = Probe::decode(packet.payload);
        if (!msg) return;
        neighbors_[ifindex][packet.src] =
            now + static_cast<sim::Time>(msg->holdtime_ms) * sim::kMillisecond;
        break;
    }
    case Code::kPrune: {
        auto msg = PruneMsg::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        mcast::ForwardingEntry* sg = cache_.find_sg(msg->source, group);
        if (sg == nullptr || ifindex == sg->iif()) return;
        prunes_[{{msg->source, group}, ifindex}] =
            now + static_cast<sim::Time>(msg->lifetime_ms) * sim::kMillisecond;
        sg->remove_oif(ifindex);
        if (sg->oif_list_empty(now) && sg->upstream_neighbor().has_value() &&
            !pruned_upstream_.contains({msg->source, group})) {
            send_prune_upstream(*sg);
            pruned_upstream_.insert({msg->source, group});
        }
        break;
    }
    case Code::kGraft: {
        auto msg = GraftMsg::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        mcast::ForwardingEntry* sg = cache_.find_sg(msg->source, group);
        if (sg == nullptr) return;
        prunes_.erase({{msg->source, group}, ifindex});
        sg->pin_oif(ifindex);
        if (pruned_upstream_.erase({msg->source, group}) > 0 &&
            sg->upstream_neighbor().has_value()) {
            send_graft_upstream(*sg);
        }
        break;
    }
    }
}

void DvmrpRouter::on_membership(int ifindex, net::GroupAddress group, bool present) {
    cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& sg) {
        if (present) {
            if (ifindex == sg.iif()) return;
            sg.pin_oif(ifindex);
            prunes_.erase({{sg.source_or_rp(), group}, ifindex});
            if (pruned_upstream_.erase({sg.source_or_rp(), group}) > 0 &&
                sg.upstream_neighbor().has_value()) {
                send_graft_upstream(sg);
            }
        } else if (!igmp_->has_members(ifindex, group) &&
                   neighbors_on(ifindex).empty()) {
            sg.remove_oif(ifindex);
        }
    });
}

void DvmrpRouter::on_tick() {
    const sim::Time now = router_->simulator().now();
    for (auto it = prunes_.begin(); it != prunes_.end();) {
        if (it->second <= now) {
            const auto& [key, ifindex] = it->first;
            if (auto* sg = cache_.find_sg(key.first, key.second)) {
                if (ifindex != sg->iif() && floods_to(ifindex, key.second)) {
                    sg->pin_oif(ifindex);
                    pruned_upstream_.erase(key);
                }
            }
            it = prunes_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& key : cache_.reap_expired_entries(now)) {
        pruned_upstream_.erase(key);
    }
    cache_.for_each_sg([&](mcast::ForwardingEntry& sg) {
        if (now - sg.last_data_at() < config_.entry_lifetime) {
            sg.set_delete_at(now + config_.entry_lifetime);
        }
    });
}

void DvmrpRouter::send_prune_upstream(const mcast::ForwardingEntry& entry) {
    PruneMsg msg{entry.source_or_rp(), entry.group().address(),
                 static_cast<std::uint32_t>(config_.prune_lifetime / sim::kMillisecond)};
    net::Packet packet;
    packet.src = router_->interface(entry.iif()).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    router_->network().stats().count_control_message("dvmrp");
    router_->network().telemetry().emit(
        telemetry::EventType::kPruneSent, router_->name(), "dvmrp",
        entry.group().to_string(), "src=" + entry.source_or_rp().to_string());
    router_->send(entry.iif(), net::Frame{std::nullopt, std::move(packet)});
}

void DvmrpRouter::send_graft_upstream(const mcast::ForwardingEntry& entry) {
    GraftMsg msg{entry.source_or_rp(), entry.group().address()};
    net::Packet packet;
    packet.src = router_->interface(entry.iif()).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    router_->network().stats().count_control_message("dvmrp");
    router_->network().telemetry().emit(
        telemetry::EventType::kGraftSent, router_->name(), "dvmrp",
        entry.group().to_string(), "src=" + entry.source_or_rp().to_string());
    router_->send(entry.iif(), net::Frame{std::nullopt, std::move(packet)});
}

} // namespace pimlib::dvmrp
