// Scenario assembly: one-call protocol stacks that wire IGMP + a multicast
// routing protocol onto every router of a topo::Network, and IGMP host
// agents onto every host. Used throughout tests, examples and benchmarks —
// and the natural entry point for library users.
//
// Unicast routing must be installed on the routers *before* constructing a
// stack (e.g. unicast::OracleRouting, DvRoutingDomain or LsRoutingDomain),
// because PIM subscribes to route changes at construction (§3.8).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "cbt/cbt.hpp"
#include "dvmrp/dvmrp.hpp"
#include "fault/fault_injector.hpp"
#include "igmp/host_agent.hpp"
#include "igmp/router_agent.hpp"
#include "mospf/mospf.hpp"
#include "pim/bootstrap/bootstrap.hpp"
#include "pim/pim_dm.hpp"
#include "pim/pim_sm.hpp"
#include "topo/network.hpp"

namespace pimlib::scenario {

/// Scales protocol timers uniformly so tests can compress hours of protocol
/// time into milliseconds of simulated time.
struct StackConfig {
    double time_scale = 1.0;
    pim::PimConfig pim{};
    pim::BootstrapConfig bootstrap{};
    pim::PimDmConfig pim_dm{};
    dvmrp::DvmrpConfig dvmrp{};
    cbt::CbtConfig cbt{};
    mospf::MospfConfig mospf{};
    igmp::RouterConfig igmp{};
    igmp::HostConfig host{};

    [[nodiscard]] StackConfig scaled(double factor) const;
};

/// Common base: IGMP router agents on all routers, host agents on all hosts.
class StackBase {
public:
    explicit StackBase(topo::Network& network, const StackConfig& config);
    virtual ~StackBase() = default;

    StackBase(const StackBase&) = delete;
    StackBase& operator=(const StackBase&) = delete;

    [[nodiscard]] igmp::RouterAgent& igmp_at(const topo::Router& router) {
        return *igmp_.at(&router);
    }
    [[nodiscard]] igmp::HostAgent& host_agent(const topo::Host& host) {
        return *host_agents_.at(&host);
    }
    [[nodiscard]] topo::Network& network() { return *network_; }

    /// Registers this stack's protocol reboots as the injector's crash
    /// resets, so crash_router()/restart_router() drop and rebuild protocol
    /// state. Derived stacks extend this with their routing protocol's
    /// reboot (call the base first).
    virtual void wire_faults(fault::FaultInjector& injector);

    /// Captures every router's multicast forwarding state (the MRIB) as one
    /// diffable telemetry snapshot, stamped with the current sim-time. The
    /// base captures nothing (no routing protocol); each stack overrides it
    /// via its protocol agents, so all five protocols export through the
    /// same shape. Pair with network().telemetry().store_snapshot().
    [[nodiscard]] virtual telemetry::MribSnapshot capture_mrib();

    /// The router's live multicast forwarding cache, or nullptr for stacks
    /// whose protocol keeps tree state outside a ForwardingCache (CBT holds
    /// parent/children state) and for the protocol-less base. Lets the tree
    /// monitor and the invariant watchdogs walk MRIBs incrementally without
    /// knowing which protocol the stack runs.
    [[nodiscard]] virtual const mcast::ForwardingCache* cache_of(const topo::Router& router);

protected:
    topo::Network* network_;
    StackConfig config_;
    std::map<const topo::Router*, std::unique_ptr<igmp::RouterAgent>, topo::NodeIdLess> igmp_;
    std::map<const topo::Host*, std::unique_ptr<igmp::HostAgent>, topo::NodeIdLess> host_agents_;
};

/// PIM sparse mode on every router (the paper's §3 protocol).
class PimSmStack : public StackBase {
public:
    explicit PimSmStack(topo::Network& network, StackConfig config = {});

    [[nodiscard]] pim::PimSmRouter& pim_at(const topo::Router& router) {
        return *pim_.at(&router);
    }
    /// Configures the group's RP list on every router (static config, §3.1).
    void set_rp(net::GroupAddress group, std::vector<net::Ipv4Address> rps);
    void set_spt_policy(pim::SptPolicy policy);

    /// Starts a BootstrapAgent on every router (idempotent) so the RP set
    /// can be discovered dynamically instead of configured via set_rp.
    void enable_bootstrap();
    [[nodiscard]] pim::BootstrapAgent& bootstrap_at(const topo::Router& router) {
        enable_bootstrap();
        return *bootstrap_.at(&router);
    }
    /// Declares `router` a candidate BSR / candidate RP (enables bootstrap
    /// on every router first — flooding needs all of them participating).
    void set_candidate_bsr(const topo::Router& router, std::uint8_t priority);
    void set_candidate_rp(const topo::Router& router, net::Prefix range,
                          std::uint8_t priority);

    void wire_faults(fault::FaultInjector& injector) override;
    [[nodiscard]] telemetry::MribSnapshot capture_mrib() override;
    [[nodiscard]] const mcast::ForwardingCache* cache_of(const topo::Router& router) override;

private:
    std::map<const topo::Router*, std::unique_ptr<pim::PimSmRouter>, topo::NodeIdLess> pim_;
    std::map<const topo::Router*, std::unique_ptr<pim::BootstrapAgent>, topo::NodeIdLess> bootstrap_;
};

/// PIM dense mode everywhere (the companion protocol [13]).
class PimDmStack : public StackBase {
public:
    explicit PimDmStack(topo::Network& network, StackConfig config = {});
    [[nodiscard]] pim::PimDmRouter& pim_at(const topo::Router& router) {
        return *pim_.at(&router);
    }
    [[nodiscard]] telemetry::MribSnapshot capture_mrib() override;
    [[nodiscard]] const mcast::ForwardingCache* cache_of(const topo::Router& router) override;

private:
    std::map<const topo::Router*, std::unique_ptr<pim::PimDmRouter>, topo::NodeIdLess> pim_;
};

/// DVMRP everywhere (dense-mode baseline).
class DvmrpStack : public StackBase {
public:
    explicit DvmrpStack(topo::Network& network, StackConfig config = {});
    [[nodiscard]] dvmrp::DvmrpRouter& dvmrp_at(const topo::Router& router) {
        return *dvmrp_.at(&router);
    }
    [[nodiscard]] telemetry::MribSnapshot capture_mrib() override;
    [[nodiscard]] const mcast::ForwardingCache* cache_of(const topo::Router& router) override;

private:
    std::map<const topo::Router*, std::unique_ptr<dvmrp::DvmrpRouter>, topo::NodeIdLess> dvmrp_;
};

/// CBT everywhere (shared-tree baseline).
class CbtStack : public StackBase {
public:
    explicit CbtStack(topo::Network& network, StackConfig config = {});
    [[nodiscard]] cbt::CbtRouter& cbt_at(const topo::Router& router) {
        return *cbt_.at(&router);
    }
    /// Configures the group's core on every router.
    void set_core(net::GroupAddress group, net::Ipv4Address core);
    [[nodiscard]] telemetry::MribSnapshot capture_mrib() override;

private:
    std::map<const topo::Router*, std::unique_ptr<cbt::CbtRouter>, topo::NodeIdLess> cbt_;
};

/// Splices a dense-mode region onto a sparse-mode border router (§4
/// "Interoperation with dense mode networks / regions").
///
/// The paper leaves the transport of member-existence information to the
/// border open ("we are working on a mechanism ... that relies on getting
/// the group member existence information to the border routers, and having
/// border routers send explicit joins"); this bridge implements it by
/// subscribing to the region's IGMP router agents and relaying membership
/// to PimSmRouter::set_dense_membership. The border's region-facing
/// interface must be flagged dense (PimSmRouter::set_interface_dense).
class DenseDomainBridge {
public:
    DenseDomainBridge(pim::PimSmRouter& border, int dense_ifindex)
        : border_(&border), dense_ifindex_(dense_ifindex) {
        border.set_interface_dense(dense_ifindex, true);
    }

    /// Starts relaying membership seen by `agent` (one of the region's
    /// routers) to the border.
    void watch(igmp::RouterAgent& agent);

private:
    void on_membership(const igmp::RouterAgent* agent, int ifindex,
                       net::GroupAddress group, bool present);

    pim::PimSmRouter* border_;
    int dense_ifindex_;
    // Reporters per group: (agent, ifindex) pairs with members present.
    // Ordered by (router id, ifindex), not agent address — see topo::NodeIdLess.
    struct ReporterLess {
        bool operator()(const std::pair<const igmp::RouterAgent*, int>& a,
                        const std::pair<const igmp::RouterAgent*, int>& b) const {
            const int aid = a.first->router().id();
            const int bid = b.first->router().id();
            return aid != bid ? aid < bid : a.second < b.second;
        }
    };
    std::map<net::GroupAddress,
             std::set<std::pair<const igmp::RouterAgent*, int>, ReporterLess>>
        reporters_;
};

/// MOSPF everywhere (link-state baseline).
class MospfStack : public StackBase {
public:
    explicit MospfStack(topo::Network& network, StackConfig config = {});
    [[nodiscard]] mospf::MospfRouter& mospf_at(const topo::Router& router) {
        return *mospf_.at(&router);
    }
    [[nodiscard]] telemetry::MribSnapshot capture_mrib() override;
    [[nodiscard]] const mcast::ForwardingCache* cache_of(const topo::Router& router) override;

private:
    std::map<const topo::Router*, std::unique_ptr<mospf::MospfRouter>, topo::NodeIdLess> mospf_;
};

} // namespace pimlib::scenario
