#include "scenario/stacks.hpp"

#include <algorithm>

namespace pimlib::scenario {

namespace {
sim::Time scale_time(sim::Time t, double factor) {
    return static_cast<sim::Time>(static_cast<double>(t) * factor);
}
} // namespace

StackConfig StackConfig::scaled(double factor) const {
    StackConfig out = *this;
    out.time_scale = time_scale * factor;
    out.pim = pim.scaled(factor);
    out.bootstrap = bootstrap.scaled(factor);
    out.pim_dm = pim_dm.scaled(factor);
    out.dvmrp = dvmrp.scaled(factor);
    out.cbt = cbt.scaled(factor);
    out.mospf = mospf.scaled(factor);
    out.igmp.query_interval = scale_time(igmp.query_interval, factor);
    out.igmp.membership_timeout = scale_time(igmp.membership_timeout, factor);
    out.igmp.other_querier_timeout = scale_time(igmp.other_querier_timeout, factor);
    out.host.unsolicited_report_interval =
        scale_time(host.unsolicited_report_interval, factor);
    out.host.query_response_max = scale_time(host.query_response_max, factor);
    return out;
}

StackBase::StackBase(topo::Network& network, const StackConfig& config)
    : network_(&network), config_(config) {
    for (const auto& router : network.routers()) {
        igmp_.emplace(router.get(),
                      std::make_unique<igmp::RouterAgent>(*router, config_.igmp));
    }
    for (const auto& host : network.hosts()) {
        host_agents_.emplace(host.get(),
                             std::make_unique<igmp::HostAgent>(*host, config_.host));
    }
}

void StackBase::wire_faults(fault::FaultInjector& injector) {
    for (auto& [router, agent] : igmp_) {
        igmp::RouterAgent* raw = agent.get();
        injector.on_crash(*router, [raw] { raw->reboot(); });
    }
}

telemetry::MribSnapshot StackBase::capture_mrib() {
    telemetry::MribSnapshot out;
    out.at = network_->simulator().now();
    return out;
}

const mcast::ForwardingCache* StackBase::cache_of(const topo::Router& /*router*/) {
    return nullptr;
}

const mcast::ForwardingCache* PimSmStack::cache_of(const topo::Router& router) {
    return &pim_.at(&router)->cache();
}

const mcast::ForwardingCache* PimDmStack::cache_of(const topo::Router& router) {
    return &pim_.at(&router)->cache();
}

const mcast::ForwardingCache* DvmrpStack::cache_of(const topo::Router& router) {
    return &dvmrp_.at(&router)->cache();
}

const mcast::ForwardingCache* MospfStack::cache_of(const topo::Router& router) {
    return &mospf_.at(&router)->cache();
}

PimSmStack::PimSmStack(topo::Network& network, StackConfig config)
    : StackBase(network, config) {
    for (const auto& router : network.routers()) {
        pim_.emplace(router.get(), std::make_unique<pim::PimSmRouter>(
                                       *router, igmp_at(*router), config_.pim));
    }
}

void PimSmStack::set_rp(net::GroupAddress group, std::vector<net::Ipv4Address> rps) {
    for (auto& [router, pim] : pim_) pim->rp_set().configure(group, rps);
}

void PimSmStack::set_spt_policy(pim::SptPolicy policy) {
    for (auto& [router, pim] : pim_) pim->set_spt_policy(policy);
}

void PimSmStack::enable_bootstrap() {
    if (!bootstrap_.empty()) return;
    for (auto& [router, pim] : pim_) {
        bootstrap_.emplace(router, std::make_unique<pim::BootstrapAgent>(
                                       *pim, config_.bootstrap));
    }
}

void PimSmStack::set_candidate_bsr(const topo::Router& router, std::uint8_t priority) {
    enable_bootstrap();
    bootstrap_.at(&router)->set_candidate_bsr(priority);
}

void PimSmStack::set_candidate_rp(const topo::Router& router, net::Prefix range,
                                  std::uint8_t priority) {
    enable_bootstrap();
    bootstrap_.at(&router)->add_candidate_rp(range, priority);
}

void PimSmStack::wire_faults(fault::FaultInjector& injector) {
    StackBase::wire_faults(injector);
    for (auto& [router, pim] : pim_) {
        pim::PimSmRouter* raw = pim.get();
        injector.on_crash(*router, [raw] { raw->reboot(); });
        // A crash also drops the bootstrap soft state — but only if the
        // agent exists by the time the fault fires, hence the lookup inside.
        injector.on_crash(*router, [this, r = router] {
            auto it = bootstrap_.find(r);
            if (it != bootstrap_.end()) it->second->reboot();
        });
    }
}

telemetry::MribSnapshot PimSmStack::capture_mrib() {
    telemetry::MribSnapshot out = StackBase::capture_mrib();
    for (const auto& router : network_->routers()) {
        out.routers.push_back(
            pim_.at(router.get())->cache().snapshot(router->name(), out.at));
    }
    return out;
}

PimDmStack::PimDmStack(topo::Network& network, StackConfig config)
    : StackBase(network, config) {
    for (const auto& router : network.routers()) {
        pim_.emplace(router.get(), std::make_unique<pim::PimDmRouter>(
                                       *router, igmp_at(*router), config_.pim_dm));
    }
}

telemetry::MribSnapshot PimDmStack::capture_mrib() {
    telemetry::MribSnapshot out = StackBase::capture_mrib();
    for (const auto& router : network_->routers()) {
        out.routers.push_back(
            pim_.at(router.get())->cache().snapshot(router->name(), out.at));
    }
    return out;
}

DvmrpStack::DvmrpStack(topo::Network& network, StackConfig config)
    : StackBase(network, config) {
    for (const auto& router : network.routers()) {
        dvmrp_.emplace(router.get(), std::make_unique<dvmrp::DvmrpRouter>(
                                         *router, igmp_at(*router), config_.dvmrp));
    }
}

telemetry::MribSnapshot DvmrpStack::capture_mrib() {
    telemetry::MribSnapshot out = StackBase::capture_mrib();
    for (const auto& router : network_->routers()) {
        out.routers.push_back(
            dvmrp_.at(router.get())->cache().snapshot(router->name(), out.at));
    }
    return out;
}

CbtStack::CbtStack(topo::Network& network, StackConfig config)
    : StackBase(network, config) {
    for (const auto& router : network.routers()) {
        cbt_.emplace(router.get(), std::make_unique<cbt::CbtRouter>(
                                       *router, igmp_at(*router), config_.cbt));
    }
}

void CbtStack::set_core(net::GroupAddress group, net::Ipv4Address core) {
    for (auto& [router, cbt] : cbt_) cbt->set_core(group, core);
}

telemetry::MribSnapshot CbtStack::capture_mrib() {
    // CBT keeps per-group parent/children tree state rather than a
    // ForwardingCache; synthesize the same snapshot shape: one shared-tree
    // entry per group, core in the source slot, children + member LANs as
    // oifs (pinned = local members, soft = child routers).
    telemetry::MribSnapshot out = StackBase::capture_mrib();
    for (const auto& router : network_->routers()) {
        const cbt::CbtRouter& agent = *cbt_.at(router.get());
        telemetry::RouterMrib mrib;
        mrib.router = router->name();
        for (const auto& [group, state] : agent.trees()) {
            telemetry::EntrySnapshot e;
            e.source_or_rp = state.core.to_string();
            e.group = group.to_string();
            e.wildcard = true;
            e.iif = state.parent_ifindex;
            std::set<int> child_ifaces;
            for (const auto& [ifindex, children] : state.children) {
                if (!children.empty()) child_ifaces.insert(ifindex);
            }
            sim::Time soonest_child = 0;
            for (const auto& [addr, expiry] : state.child_expiry) {
                if (soonest_child == 0 || expiry < soonest_child) soonest_child = expiry;
            }
            for (int ifindex : child_ifaces) {
                telemetry::OifSnapshot oif;
                oif.ifindex = ifindex;
                oif.remaining = soonest_child == 0
                                    ? 0
                                    : std::max<sim::Time>(0, soonest_child - out.at);
                e.oifs.push_back(oif);
            }
            for (int ifindex : state.member_ifaces) {
                if (child_ifaces.contains(ifindex)) continue;
                telemetry::OifSnapshot oif;
                oif.ifindex = ifindex;
                oif.pinned = true;
                e.oifs.push_back(oif);
            }
            mrib.entries.push_back(std::move(e));
        }
        out.routers.push_back(std::move(mrib));
    }
    return out;
}

void DenseDomainBridge::watch(igmp::RouterAgent& agent) {
    const igmp::RouterAgent* key = &agent;
    agent.subscribe([this, key](int ifindex, net::GroupAddress group, bool present) {
        on_membership(key, ifindex, group, present);
    });
}

void DenseDomainBridge::on_membership(const igmp::RouterAgent* agent, int ifindex,
                                      net::GroupAddress group, bool present) {
    auto& who = reporters_[group];
    const bool had_members = !who.empty();
    if (present) {
        who.insert({agent, ifindex});
    } else {
        who.erase({agent, ifindex});
    }
    const bool has_members = !who.empty();
    if (has_members != had_members) {
        border_->set_dense_membership(dense_ifindex_, group, has_members);
    }
}

MospfStack::MospfStack(topo::Network& network, StackConfig config)
    : StackBase(network, config) {
    for (const auto& router : network.routers()) {
        mospf_.emplace(router.get(), std::make_unique<mospf::MospfRouter>(
                                         *router, igmp_at(*router), config_.mospf));
    }
}

telemetry::MribSnapshot MospfStack::capture_mrib() {
    telemetry::MribSnapshot out = StackBase::capture_mrib();
    for (const auto& router : network_->routers()) {
        out.routers.push_back(
            mospf_.at(router.get())->cache().snapshot(router->name(), out.at));
    }
    return out;
}

} // namespace pimlib::scenario
