#include "mospf/mospf.hpp"

#include <limits>
#include <queue>

#include "net/buffer.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/segment.hpp"

namespace pimlib::mospf {

namespace {
constexpr std::uint8_t kTypeMembershipLsa = 3; // within IpProto::kOspf
constexpr int kInf = std::numeric_limits<int>::max() / 4;
} // namespace

std::vector<std::uint8_t> MembershipLsa::encode() const {
    net::BufWriter w(11 + groups.size() * 4);
    w.put_u8(kTypeMembershipLsa);
    w.put_addr(origin);
    w.put_u32(seq);
    w.put_u16(static_cast<std::uint16_t>(groups.size()));
    for (net::Ipv4Address g : groups) w.put_addr(g);
    return w.take();
}

std::optional<MembershipLsa> MembershipLsa::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto type = r.get_u8();
    if (!type || *type != kTypeMembershipLsa) return std::nullopt;
    MembershipLsa lsa;
    auto origin = r.get_addr();
    auto seq = r.get_u32();
    auto count = r.get_u16();
    if (!origin || !seq || !count) return std::nullopt;
    lsa.origin = *origin;
    lsa.seq = *seq;
    for (std::uint16_t i = 0; i < *count; ++i) {
        auto g = r.get_addr();
        if (!g) return std::nullopt;
        lsa.groups.push_back(*g);
    }
    if (!r.at_end()) return std::nullopt;
    return lsa;
}

MospfRouter::MospfRouter(topo::Router& router, igmp::RouterAgent& igmp,
                         MospfConfig config)
    : router_(&router),
      igmp_(&igmp),
      config_(config),
      data_plane_(router, cache_),
      refresh_timer_(router.simulator(), [this] { originate_lsa(); }) {
    data_plane_.set_delegate(this);
    router_->register_protocol(net::IpProto::kOspf,
                               [this](int ifindex, const net::Packet& packet) {
                                   on_message(ifindex, packet);
                               });
    igmp_->subscribe([this](int ifindex, net::GroupAddress group, bool present) {
        on_membership(ifindex, group, present);
    });
    refresh_timer_.start(config_.lsa_refresh);
    router_->simulator().schedule(0, [this] { originate_lsa(); });
}

std::set<net::Ipv4Address> MospfRouter::member_routers(net::GroupAddress group) const {
    std::set<net::Ipv4Address> out;
    for (const auto& [rid, entry] : lsdb_) {
        if (entry.second.contains(group.address())) out.insert(rid);
    }
    return out;
}

void MospfRouter::on_membership(int ifindex, net::GroupAddress group, bool present) {
    (void)ifindex;
    (void)present;
    // Membership changed: re-advertise and invalidate cached trees for the
    // group (MOSPF recomputes on membership change).
    cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& e) {
        e.set_delete_at(1); // reaped below
    });
    (void)cache_.reap_expired_entries(router_->simulator().now() + 1);
    originate_lsa();
}

void MospfRouter::originate_lsa() {
    MembershipLsa lsa;
    lsa.origin = router_->router_id();
    lsa.seq = ++own_seq_;
    std::set<net::Ipv4Address> groups;
    for (const auto& iface : router_->interfaces()) {
        for (net::GroupAddress g : igmp_->groups_on(iface.ifindex)) {
            groups.insert(g.address());
        }
    }
    lsa.groups.assign(groups.begin(), groups.end());
    lsdb_[lsa.origin] = {lsa.seq, groups};
    (void)cache_.reap_expired_entries(router_->simulator().now());
    flood(lsa, /*except_ifindex=*/-1);
}

void MospfRouter::flood(const MembershipLsa& lsa, int except_ifindex) {
    if (except_ifindex < 0) {
        // Origination (not re-flooding a neighbor's copy).
        router_->network().telemetry().emit(
            telemetry::EventType::kLsaOriginated, router_->name(), "mospf", "",
            "seq=" + std::to_string(lsa.seq) +
                " groups=" + std::to_string(lsa.groups.size()));
    }
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        if (iface.ifindex == except_ifindex) continue;
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kOspf;
        packet.ttl = 1;
        packet.payload = lsa.encode();
        router_->network().stats().count_control_message("mospf-lsa");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void MospfRouter::on_message(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.mospf");
    auto lsa = MembershipLsa::decode(packet.payload);
    if (!lsa) return;
    if (lsa->origin == router_->router_id()) return;
    auto it = lsdb_.find(lsa->origin);
    if (it != lsdb_.end() && it->second.first >= lsa->seq) return;
    const std::set<net::Ipv4Address> groups(lsa->groups.begin(), lsa->groups.end());
    // Invalidate cached trees only for groups whose membership actually
    // changed (periodic refresh LSAs carry identical content and must not
    // flush the forwarding cache).
    std::set<net::Ipv4Address> affected;
    const std::set<net::Ipv4Address> old_groups =
        it != lsdb_.end() ? it->second.second : std::set<net::Ipv4Address>{};
    for (net::Ipv4Address g : groups) {
        if (!old_groups.contains(g)) affected.insert(g);
    }
    for (net::Ipv4Address g : old_groups) {
        if (!groups.contains(g)) affected.insert(g);
    }
    lsdb_[lsa->origin] = {lsa->seq, groups};
    for (net::Ipv4Address g : affected) {
        if (!g.is_multicast()) continue;
        cache_.for_each_sg_of(net::GroupAddress{g},
                              [&](mcast::ForwardingEntry& e) { e.set_delete_at(1); });
    }
    if (!affected.empty()) {
        (void)cache_.reap_expired_entries(router_->simulator().now() + 1);
    }
    flood(*lsa, ifindex);
}

mcast::ForwardingEntry* MospfRouter::compute_entry(net::Ipv4Address source,
                                                   net::GroupAddress group) {
    ++spf_runs_;
    topo::Network& network = router_->network();

    // Locate the source's segment.
    const topo::Segment* source_segment = nullptr;
    for (const auto& segment : network.segments()) {
        if (segment->prefix().contains(source)) {
            source_segment = segment.get();
            break;
        }
    }
    if (source_segment == nullptr) return nullptr;

    // Deterministic Dijkstra over the router graph, identical at every
    // router (tie-break on node id), seeded from the source segment.
    std::map<const topo::Router*, int> dist;
    std::map<const topo::Router*, const topo::Router*> parent;
    std::map<const topo::Router*, const topo::Segment*> parent_segment;
    using Item = std::tuple<int, int, const topo::Router*>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;

    for (const auto& att : source_segment->attachments()) {
        auto* r = dynamic_cast<const topo::Router*>(att.node);
        if (r == nullptr || !r->interface(att.ifindex).up) continue;
        dist[r] = source_segment->metric();
        parent[r] = nullptr;
        parent_segment[r] = source_segment;
        queue.emplace(dist[r], r->id(), r);
    }

    while (!queue.empty()) {
        auto [d, id, r] = queue.top();
        queue.pop();
        if (d > dist[r]) continue;
        for (const auto& iface : r->interfaces()) {
            if (!iface.up || iface.segment == nullptr || !iface.segment->is_up()) continue;
            for (const auto& att : iface.segment->attachments()) {
                auto* peer = dynamic_cast<const topo::Router*>(att.node);
                if (peer == nullptr || peer == r) continue;
                if (!peer->interface(att.ifindex).up) continue;
                const int nd = d + iface.segment->metric();
                auto dit = dist.find(peer);
                const bool better =
                    dit == dist.end() || nd < dit->second ||
                    (nd == dit->second && parent[peer] != nullptr &&
                     r->id() < parent[peer]->id());
                if (!better) continue;
                dist[peer] = nd;
                parent[peer] = r;
                parent_segment[peer] = iface.segment;
                queue.emplace(nd, peer->id(), peer);
            }
        }
    }

    if (!dist.contains(router_)) return nullptr;

    // Member routers (from flooded LSAs) resolved to nodes.
    std::set<const topo::Router*> members;
    for (const auto& r : network.routers()) {
        auto it = lsdb_.find(r->router_id());
        if (it != lsdb_.end() && it->second.second.contains(group.address())) {
            members.insert(r.get());
        }
    }
    if (igmp_->member_interfaces(group).empty() && members.empty()) return nullptr;

    // Child segments of this router on the pruned SPT: a child c is on the
    // tree iff its subtree contains a member router.
    std::set<const topo::Router*> on_tree;
    for (const topo::Router* m : members) {
        const topo::Router* walk = m;
        while (walk != nullptr && !on_tree.contains(walk)) {
            if (!dist.contains(walk)) break;
            on_tree.insert(walk);
            walk = parent.at(walk);
        }
    }
    if (!on_tree.contains(router_) && igmp_->member_interfaces(group).empty()) {
        return nullptr;
    }

    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry& sg = cache_.ensure_sg(source, group);
    sg.set_spt_bit(true);
    auto iif = router_->ifindex_on(*parent_segment.at(router_));
    if (!iif.has_value()) return nullptr;
    sg.set_iif(*iif);
    // Children whose parent edge runs through us.
    for (const auto& r : network.routers()) {
        if (!on_tree.contains(r.get())) continue;
        auto pit = parent.find(r.get());
        if (pit == parent.end() || pit->second != router_) continue;
        auto oif = router_->ifindex_on(*parent_segment.at(r.get()));
        if (oif.has_value() && *oif != sg.iif()) sg.pin_oif(*oif);
    }
    for (int m : igmp_->member_interfaces(group)) {
        if (m != sg.iif()) sg.pin_oif(m);
    }
    if (sg.oifs().empty()) {
        // Not actually on the pruned tree; remember the negative result as a
        // no-oif entry so we do not recompute per packet.
        sg.set_delete_at(now + config_.lsa_refresh);
    }
    return &sg;
}

void MospfRouter::on_no_entry(int ifindex, const net::Packet& packet) {
    const net::GroupAddress group{packet.dst};
    mcast::ForwardingEntry* sg = compute_entry(packet.src, group);
    if (sg == nullptr) {
        data_plane_.record_hop(ifindex, packet, nullptr, provenance::EntryKind::kNone,
                               /*rpf_ok=*/false, provenance::DropReason::kNoState);
        return;
    }
    if (ifindex != sg->iif()) {
        router_->network().stats().count_data_dropped_iif();
        data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                               /*rpf_ok=*/false, provenance::DropReason::kRpfFail);
        return;
    }
    data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                           /*rpf_ok=*/true, provenance::DropReason::kNone);
    data_plane_.replicate(*sg, ifindex, packet);
}

} // namespace pimlib::mospf
