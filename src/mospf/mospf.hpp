// MOSPF baseline (Moy, the paper's references [3]/[7]): link-state multicast.
// Group membership is flooded domain-wide in group-membership LSAs; each
// router computes the source-rooted shortest-path tree on demand when the
// first data packet of an (S,G) arrives (the Dijkstra cost the paper calls
// out as a scaling limit), and installs the resulting forwarding entry.
//
// Substitution note (DESIGN.md): the unicast topology database is taken from
// the global simulation topology — the same information a converged OSPF
// LSDB holds — while *membership* LSAs are real flooded messages, because
// membership broadcast is the overhead the paper critiques (§1.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "igmp/router_agent.hpp"
#include "mcast/forwarding_cache.hpp"
#include "sim/simulator.hpp"
#include "topo/network.hpp"
#include "topo/router.hpp"

namespace pimlib::mospf {

/// Group-membership LSA: the set of groups with members attached to the
/// originating router.
struct MembershipLsa {
    net::Ipv4Address origin; // router id
    std::uint32_t seq = 0;
    std::vector<net::Ipv4Address> groups;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<MembershipLsa> decode(std::span<const std::uint8_t> bytes);
};

struct MospfConfig {
    sim::Time lsa_refresh = 30 * sim::kSecond;

    [[nodiscard]] MospfConfig scaled(double factor) const {
        MospfConfig out = *this;
        out.lsa_refresh =
            static_cast<sim::Time>(static_cast<double>(lsa_refresh) * factor);
        return out;
    }
};

class MospfRouter final : public mcast::DataPlane::Delegate {
public:
    MospfRouter(topo::Router& router, igmp::RouterAgent& igmp, MospfConfig config = {});

    MospfRouter(const MospfRouter&) = delete;
    MospfRouter& operator=(const MospfRouter&) = delete;

    [[nodiscard]] mcast::ForwardingCache& cache() { return cache_; }
    /// Routers known (via flooded LSAs) to have members of `group`.
    [[nodiscard]] std::set<net::Ipv4Address> member_routers(net::GroupAddress group) const;
    [[nodiscard]] std::size_t spf_runs() const { return spf_runs_; }

    void on_no_entry(int ifindex, const net::Packet& packet) override;

private:
    void on_message(int ifindex, const net::Packet& packet);
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void originate_lsa();
    void flood(const MembershipLsa& lsa, int except_ifindex);
    /// Builds the (S,G) entry from the domain-wide SPT rooted at the
    /// source's subnet. Returns nullptr when we are not on the tree.
    mcast::ForwardingEntry* compute_entry(net::Ipv4Address source,
                                          net::GroupAddress group);

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    MospfConfig config_;
    mcast::ForwardingCache cache_;
    mcast::DataPlane data_plane_;

    std::uint32_t own_seq_ = 0;
    // lsdb_[router id] = {seq, groups}
    std::map<net::Ipv4Address, std::pair<std::uint32_t, std::set<net::Ipv4Address>>> lsdb_;
    std::size_t spf_runs_ = 0;
    sim::PeriodicTimer refresh_timer_;
};

} // namespace pimlib::mospf
