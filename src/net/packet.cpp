#include "net/packet.hpp"

namespace pimlib::net {

std::string Packet::describe() const {
    std::string out = src.to_string() + " -> " + dst.to_string();
    out += " proto=" + std::to_string(static_cast<int>(proto));
    out += " ttl=" + std::to_string(ttl);
    out += " len=" + std::to_string(payload.size());
    if (seq != 0) out += " seq=" + std::to_string(seq);
    return out;
}

} // namespace pimlib::net
