#include "net/buffer.hpp"

namespace pimlib::net {

bool BufReader::take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    return true;
}

std::optional<std::uint8_t> BufReader::get_u8() {
    if (!take(1)) return std::nullopt;
    return data_[pos_++];
}

std::optional<std::uint16_t> BufReader::get_u16() {
    if (!take(2)) return std::nullopt;
    std::uint16_t v = static_cast<std::uint16_t>(std::uint16_t{data_[pos_]} << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::optional<std::uint32_t> BufReader::get_u32() {
    if (!take(4)) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
}

std::optional<std::uint64_t> BufReader::get_u64() {
    if (!take(8)) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
}

std::optional<Ipv4Address> BufReader::get_addr() {
    auto v = get_u32();
    if (!v) return std::nullopt;
    return Ipv4Address{*v};
}

std::optional<std::vector<std::uint8_t>> BufReader::get_bytes(std::size_t n) {
    if (!take(n)) return std::nullopt;
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

} // namespace pimlib::net
