// Bounds-checked wire-format buffers.
//
// Every control message in the library serializes through BufWriter and
// parses through BufReader; both are fully bounds-checked so a malformed or
// truncated message can never read or write out of range. Multi-byte fields
// are big-endian (network byte order) on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace pimlib::net {

/// Appends big-endian fields to a growable byte vector.
class BufWriter {
public:
    BufWriter() = default;
    explicit BufWriter(std::size_t reserve) { bytes_.reserve(reserve); }

    void put_u8(std::uint8_t v) { bytes_.push_back(v); }
    void put_u16(std::uint16_t v) {
        bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
        bytes_.push_back(static_cast<std::uint8_t>(v));
    }
    void put_u32(std::uint32_t v) {
        put_u16(static_cast<std::uint16_t>(v >> 16));
        put_u16(static_cast<std::uint16_t>(v));
    }
    void put_u64(std::uint64_t v) {
        put_u32(static_cast<std::uint32_t>(v >> 32));
        put_u32(static_cast<std::uint32_t>(v));
    }
    void put_addr(Ipv4Address a) { put_u32(a.to_uint()); }
    void put_bytes(std::span<const std::uint8_t> data) {
        bytes_.insert(bytes_.end(), data.begin(), data.end());
    }

    [[nodiscard]] std::size_t size() const { return bytes_.size(); }
    /// Takes the accumulated bytes; the writer is empty afterwards.
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Reads big-endian fields from a byte span. All getters return nullopt on
/// underrun instead of reading past the end; once an underrun happens the
/// reader stays failed (ok() == false).
class BufReader {
public:
    explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::optional<std::uint8_t> get_u8();
    [[nodiscard]] std::optional<std::uint16_t> get_u16();
    [[nodiscard]] std::optional<std::uint32_t> get_u32();
    [[nodiscard]] std::optional<std::uint64_t> get_u64();
    [[nodiscard]] std::optional<Ipv4Address> get_addr();
    /// Copies `n` bytes out; nullopt on underrun.
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> get_bytes(std::size_t n);

    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

private:
    bool take(std::size_t n);
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace pimlib::net
