// Network-layer packets and link-layer frames as exchanged over simulated
// segments. Payloads are opaque byte vectors produced by the per-protocol
// codecs (see pim/messages.hpp etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace pimlib::net {

/// IP protocol numbers used in the simulation. IGMP carries PIM and DVMRP
/// control traffic, matching the 1994-era encapsulation; the unicast routing
/// protocols get private numbers for simplicity (the real ones ride on UDP
/// which we do not model).
enum class IpProto : std::uint8_t {
    kIgmp = 2,        // IGMP, PIM v1 messages, DVMRP messages
    kCbt = 7,         // CBT control
    kUdp = 17,        // application data payloads
    kOspf = 89,       // link-state unicast routing
    kRip = 200,       // distance-vector unicast routing (private number)
};

/// A network-layer packet. `payload` is already-encoded wire bytes.
struct Packet {
    Ipv4Address src;
    Ipv4Address dst;
    IpProto proto = IpProto::kUdp;
    std::uint8_t ttl = 64;
    std::vector<std::uint8_t> payload;

    /// Sequence number stamped by traffic sources so receivers can detect
    /// loss/duplication in tests; 0 for control traffic.
    std::uint64_t seq = 0;

    /// Provenance id (see provenance::packet_id): stamped at origination,
    /// carried through replication and restamped across register/DataEncap
    /// encapsulation so one id names one end-to-end data packet. 0 means
    /// unstamped (control traffic) — the flight recorder skips it.
    std::uint64_t pid = 0;

    [[nodiscard]] bool is_multicast() const { return dst.is_multicast(); }
    [[nodiscard]] std::string describe() const;
};

/// A link-layer frame: a packet plus where on the segment it is going.
/// `link_dst` unset means link-layer broadcast/multicast — every other
/// attachment on the segment receives it. When set, only the attachment
/// owning that interface address receives it (our stand-in for unicast MAC
/// addressing; ARP is not modeled).
struct Frame {
    std::optional<Ipv4Address> link_dst;
    Packet packet;
};

} // namespace pimlib::net
