// IPv4 addresses, prefixes and well-known multicast constants.
//
// Addresses are strong value types (no implicit conversion from raw
// integers); everything here is constexpr-friendly and hashable so the rest
// of the library can use addresses as map keys.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace pimlib::net {

/// An IPv4 address. Stored in host byte order; serialization converts to
/// network order at the wire boundary (see BufWriter::put_addr).
class Ipv4Address {
public:
    constexpr Ipv4Address() = default;
    constexpr explicit Ipv4Address(std::uint32_t host_order) : bits_(host_order) {}
    constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

    /// Parses dotted-quad notation; returns nullopt on malformed input.
    static std::optional<Ipv4Address> parse(std::string_view text);

    [[nodiscard]] constexpr std::uint32_t to_uint() const { return bits_; }
    [[nodiscard]] std::string to_string() const;

    /// True for class-D (224.0.0.0/4) addresses, i.e. multicast groups.
    [[nodiscard]] constexpr bool is_multicast() const {
        return (bits_ & 0xF000'0000u) == 0xE000'0000u;
    }
    /// True for 224.0.0.0/24 — link-local multicast that routers never forward.
    [[nodiscard]] constexpr bool is_link_local_multicast() const {
        return (bits_ & 0xFFFF'FF00u) == 0xE000'0000u;
    }
    [[nodiscard]] constexpr bool is_unspecified() const { return bits_ == 0; }

    friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

private:
    std::uint32_t bits_ = 0;
};

/// A multicast group address; constructing from a non-class-D address is a
/// logic error detected at construction.
class GroupAddress {
public:
    constexpr GroupAddress() = default;
    explicit GroupAddress(Ipv4Address addr);

    [[nodiscard]] constexpr Ipv4Address address() const { return addr_; }
    [[nodiscard]] std::string to_string() const { return addr_.to_string(); }

    friend constexpr auto operator<=>(GroupAddress, GroupAddress) = default;

private:
    Ipv4Address addr_{};
};

/// An address prefix (address + mask length) for routing tables.
class Prefix {
public:
    constexpr Prefix() = default;
    /// Canonicalizes: host bits below the mask are cleared.
    constexpr Prefix(Ipv4Address addr, int length)
        : addr_(mask_of(length) & addr.to_uint()), len_(length) {}

    static std::optional<Prefix> parse(std::string_view text); // "a.b.c.d/len"

    [[nodiscard]] constexpr Ipv4Address address() const { return Ipv4Address{addr_}; }
    [[nodiscard]] constexpr int length() const { return len_; }
    [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
        return (a.to_uint() & mask_of(len_)) == addr_;
    }
    [[nodiscard]] std::string to_string() const;

    /// /32 prefix for a single host.
    static constexpr Prefix host(Ipv4Address a) { return Prefix{a, 32}; }

    friend constexpr auto operator<=>(Prefix, Prefix) = default;

private:
    static constexpr std::uint32_t mask_of(int len) {
        return len == 0 ? 0u : (0xFFFF'FFFFu << (32 - len));
    }
    std::uint32_t addr_ = 0;
    int len_ = 0;
};

/// 224.0.0.2 — all routers on this subnetwork. The 1994 PIM spec sends
/// queries and LAN joins/prunes here so that peer routers overhear them.
inline constexpr Ipv4Address kAllRouters{224, 0, 0, 2};
/// 224.0.0.1 — all systems (IGMP queries).
inline constexpr Ipv4Address kAllSystems{224, 0, 0, 1};

} // namespace pimlib::net

template <>
struct std::hash<pimlib::net::Ipv4Address> {
    std::size_t operator()(pimlib::net::Ipv4Address a) const noexcept {
        return std::hash<std::uint32_t>{}(a.to_uint());
    }
};

template <>
struct std::hash<pimlib::net::GroupAddress> {
    std::size_t operator()(pimlib::net::GroupAddress g) const noexcept {
        return std::hash<std::uint32_t>{}(g.address().to_uint());
    }
};
