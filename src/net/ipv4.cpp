#include "net/ipv4.hpp"

#include <charconv>
#include <stdexcept>

namespace pimlib::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
    std::uint32_t octets[4];
    const char* p = text.data();
    const char* end = text.data() + text.size();
    for (int i = 0; i < 4; ++i) {
        unsigned value = 0;
        auto [next, ec] = std::from_chars(p, end, value);
        if (ec != std::errc{} || value > 255) return std::nullopt;
        octets[i] = value;
        p = next;
        if (i < 3) {
            if (p == end || *p != '.') return std::nullopt;
            ++p;
        }
    }
    if (p != end) return std::nullopt;
    return Ipv4Address{(octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]};
}

std::string Ipv4Address::to_string() const {
    std::string out;
    out.reserve(15);
    for (int shift = 24; shift >= 0; shift -= 8) {
        out += std::to_string((bits_ >> shift) & 0xFF);
        if (shift != 0) out += '.';
    }
    return out;
}

GroupAddress::GroupAddress(Ipv4Address addr) : addr_(addr) {
    if (!addr.is_multicast()) {
        throw std::invalid_argument("GroupAddress requires a class-D address, got " +
                                    addr.to_string());
    }
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
    auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    auto addr = Ipv4Address::parse(text.substr(0, slash));
    if (!addr) return std::nullopt;
    int len = 0;
    auto tail = text.substr(slash + 1);
    auto [next, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), len);
    if (ec != std::errc{} || next != tail.data() + tail.size() || len < 0 || len > 32) {
        return std::nullopt;
    }
    return Prefix{*addr, len};
}

std::string Prefix::to_string() const {
    return address().to_string() + "/" + std::to_string(len_);
}

} // namespace pimlib::net
