// Transit-stub hierarchical random graphs (GT-ITM style; Zegura/Calvert/
// Bhattacharjee, "How to Model an Internetwork", INFOCOM '96): a connected
// core of transit domains, each transit node sponsoring several stub
// domains. This is the wide-area structure the paper assumes — "groups of
// members ... sparsely distributed across a wide area" (§1.1) — and the
// substrate the workload subsystem scales membership churn on: stub
// domains hold the receiver LANs, the transit core carries the shared and
// shortest-path trees between them.
#pragma once

#include <random>
#include <vector>

#include "graph/graph.hpp"

namespace pimlib::graph {

struct TransitStubOptions {
    int transit_domains = 2;
    /// Routers per transit domain (connected random subgraph).
    int transit_nodes = 4;
    /// Stub domains hanging off each transit node.
    int stub_domains = 3;
    /// Routers per stub domain (connected random subgraph).
    int stub_nodes = 4;
    /// Extra intra-domain edges beyond the spanning tree, as a fraction of
    /// the domain's node count (redundancy inside domains).
    double transit_redundancy = 0.5;
    double stub_redundancy = 0.25;
    /// Link weights: long-haul transit links cost more than stub-internal
    /// hops; access links (stub gateway -> sponsoring transit node) sit in
    /// between, matching the usual transit-stub parameterization.
    double transit_weight = 10.0;
    double access_weight = 4.0;
    double stub_weight = 1.0;
};

/// A generated transit-stub graph plus the hierarchy metadata the workload
/// layer needs to place RPs (transit core) and receiver banks (stubs).
struct TransitStubGraph {
    Graph graph{0};
    /// Per node: true if it belongs to a transit domain.
    std::vector<bool> is_transit;
    /// Per node: domain id. Transit domains are 0..transit_domains-1; stub
    /// domains continue from transit_domains upward.
    std::vector<int> domain;
    /// Node ids of all transit (resp. stub) routers, ascending.
    std::vector<int> transit_nodes;
    std::vector<int> stub_nodes;
    /// Per stub domain (indexed from 0, i.e. domain id - transit_domains):
    /// the transit node sponsoring it.
    std::vector<int> stub_attachment;

    [[nodiscard]] int node_count() const { return graph.node_count(); }
    [[nodiscard]] int stub_domain_count() const {
        return static_cast<int>(stub_attachment.size());
    }
};

/// Generates a connected transit-stub graph. Deterministic for a given
/// (options, rng state): two calls with equal-seeded generators produce
/// identical graphs. Throws std::invalid_argument on non-positive sizes.
TransitStubGraph transit_stub_graph(const TransitStubOptions& options, std::mt19937& rng);

} // namespace pimlib::graph
