// Shortest paths for the Figure 2 study: single-source Dijkstra with
// predecessor tracking, and all-pairs distances.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pimlib::graph {

struct ShortestPathTree {
    std::vector<double> distance; // from the source; +inf if unreachable
    std::vector<int> parent;      // -1 at the source / unreachable
    int source = -1;

    /// Nodes on the path source → node, inclusive; empty if unreachable.
    [[nodiscard]] std::vector<int> path_to(int node) const;
};

ShortestPathTree dijkstra(const Graph& graph, int source);

/// All-pairs shortest-path distances (n × Dijkstra).
class AllPairs {
public:
    explicit AllPairs(const Graph& graph);

    [[nodiscard]] double distance(int u, int v) const {
        return trees_[static_cast<std::size_t>(u)].distance[static_cast<std::size_t>(v)];
    }
    [[nodiscard]] const ShortestPathTree& tree(int source) const {
        return trees_[static_cast<std::size_t>(source)];
    }
    [[nodiscard]] int node_count() const { return static_cast<int>(trees_.size()); }

private:
    std::vector<ShortestPathTree> trees_;
};

} // namespace pimlib::graph
