#include "graph/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace pimlib::graph {

std::vector<int> ShortestPathTree::path_to(int node) const {
    std::vector<int> out;
    if (node < 0 || node >= static_cast<int>(parent.size())) return out;
    if (node != source && parent[static_cast<std::size_t>(node)] < 0) return out;
    for (int walk = node; walk >= 0; walk = parent[static_cast<std::size_t>(walk)]) {
        out.push_back(walk);
        if (walk == source) break;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

ShortestPathTree dijkstra(const Graph& graph, int source) {
    const auto n = static_cast<std::size_t>(graph.node_count());
    ShortestPathTree tree;
    tree.source = source;
    tree.distance.assign(n, std::numeric_limits<double>::infinity());
    tree.parent.assign(n, -1);
    tree.distance[static_cast<std::size_t>(source)] = 0.0;

    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0.0, source);
    while (!queue.empty()) {
        auto [d, u] = queue.top();
        queue.pop();
        if (d > tree.distance[static_cast<std::size_t>(u)]) continue;
        for (const Graph::Edge& e : graph.neighbors(u)) {
            const double nd = d + e.weight;
            if (nd < tree.distance[static_cast<std::size_t>(e.to)]) {
                tree.distance[static_cast<std::size_t>(e.to)] = nd;
                tree.parent[static_cast<std::size_t>(e.to)] = u;
                queue.emplace(nd, e.to);
            }
        }
    }
    return tree;
}

AllPairs::AllPairs(const Graph& graph) {
    trees_.reserve(static_cast<std::size_t>(graph.node_count()));
    for (int u = 0; u < graph.node_count(); ++u) {
        trees_.push_back(dijkstra(graph, u));
    }
}

} // namespace pimlib::graph
