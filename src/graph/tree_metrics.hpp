// Tree-quality measurements shared by the Figure 2 benches and the live
// telemetry TreeMonitor, so offline and online numbers come from one
// implementation and cannot drift:
//
//   Figure 2(a)  delay ratio ("stretch"): member-pair delay via the tree
//                root vs. the direct shortest path — delay_ratio_via_root
//   Figure 2(b)  traffic concentration: "we measured the number of traffic
//                flows on each link of the network, then recorded the
//                maximum number within the network" (§1.3) — FlowLoad
//
// The fig2a/fig2b benches feed these from all-pairs oracles over abstract
// random graphs; the TreeMonitor feeds them from live MRIB walks (iif-chain
// delays, segment ids). A flow is one (group, sender) stream offline and
// one (tree, link) arm online.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "graph/center_tree.hpp"
#include "graph/shortest_path.hpp"

namespace pimlib::graph {

/// Direct shortest-path delay between members i and j — indexes into the
/// caller's member list, not graph node ids.
using PairDelayFn = std::function<double(std::size_t, std::size_t)>;

/// Max over ordered member pairs (u != v) of root_delay[u] + root_delay[v]
/// — the via-root (center-based tree) maximum delay. Equals the sum of the
/// two largest entries; 0 with fewer than two members.
[[nodiscard]] double max_via_root_delay(const std::vector<double>& root_delay);

/// Mean over ordered member pairs (u != v) of root_delay[u] + root_delay[v];
/// simplifies to 2 * sum / n. 0 with fewer than two members.
[[nodiscard]] double mean_via_root_delay(const std::vector<double>& root_delay);

/// Max over unordered member pairs of pair_delay(i, j) — the shortest-path
/// tree baseline of Fig. 2(a). 0 with fewer than two members.
[[nodiscard]] double max_pair_delay(std::size_t n, const PairDelayFn& pair_delay);

/// Mean over unordered member pairs of pair_delay(i, j).
[[nodiscard]] double mean_pair_delay(std::size_t n, const PairDelayFn& pair_delay);

/// One group's Fig. 2(a) row: member-pair delay via the tree root vs. the
/// direct shortest-path baseline, as maxima and means.
struct DelayRatio {
    double tree_max = 0.0;   // max via-root member-pair delay
    double spt_max = 0.0;    // max direct shortest-path member-pair delay
    double max_ratio = 0.0;  // tree_max / spt_max; 0 when spt_max == 0
    double tree_mean = 0.0;
    double spt_mean = 0.0;
    double mean_ratio = 0.0;
};

/// The one delay-stretch implementation. `root_delay[i]` is member i's
/// delay to the tree root measured on whatever tree the caller has — the
/// ideal center tree offline (fig2a), the actual MRIB iif chain online
/// (TreeMonitor) — and `pair_delay` is the direct shortest-path baseline.
[[nodiscard]] DelayRatio delay_ratio_via_root(const std::vector<double>& root_delay,
                                              const PairDelayFn& pair_delay);

/// Fig. 2(a) per-trial computation on an abstract graph: members' delays to
/// `core` and the pairwise baseline both come from the all-pairs oracle.
[[nodiscard]] DelayRatio center_tree_delay_ratio(const AllPairs& ap,
                                                 const std::vector<int>& members,
                                                 int core);

/// Dense per-link flow accumulator keyed by caller-assigned non-negative
/// edge ids — compact graph edge ids offline (bench EdgeFlowCounter),
/// topo::Segment ids online (TreeMonitor). Grows on demand; max_flows() is
/// the Figure 2(b) statistic.
class FlowLoad {
public:
    void add(int edge_id, std::size_t count = 1);
    [[nodiscard]] std::size_t max_flows() const;
    [[nodiscard]] std::size_t total_flows() const;
    /// Links carrying at least one flow.
    [[nodiscard]] std::size_t links_used() const;
    [[nodiscard]] const std::vector<std::size_t>& per_edge() const { return flows_; }
    void clear() { flows_.clear(); }

private:
    std::vector<std::size_t> flows_;
};

/// Accumulates flow counts per undirected edge across many groups.
class LinkFlowCounter {
public:
    void add_flow_on(int u, int v) { ++flows_[{std::min(u, v), std::max(u, v)}]; }
    [[nodiscard]] std::size_t max_flows() const;
    [[nodiscard]] std::size_t total_flows() const;
    [[nodiscard]] std::size_t links_used() const { return flows_.size(); }

private:
    std::map<std::pair<int, int>, std::size_t> flows_;
};

/// Adds the flows of one group using per-sender shortest-path trees: sender
/// s's flow occupies every edge on the union of shortest paths s → member.
void add_spt_group_flows(const AllPairs& ap, const std::vector<int>& members,
                         const std::vector<int>& senders, LinkFlowCounter& counter);

/// Adds the flows of one group using a single shared center-based tree:
/// every sender's flow traverses the whole tree (each member must receive
/// it), plus the sender's path onto the tree when the sender sits off-tree.
void add_center_tree_group_flows(const AllPairs& ap, const std::vector<int>& members,
                                 const std::vector<int>& senders, const CenterTree& tree,
                                 LinkFlowCounter& counter);

} // namespace pimlib::graph
