// Traffic-concentration measurement for Figure 2(b): "we measured the number
// of traffic flows on each link of the network, then recorded the maximum
// number within the network" (§1.3). A flow is one (group, sender) stream.
#pragma once

#include <map>
#include <vector>

#include "graph/center_tree.hpp"
#include "graph/shortest_path.hpp"

namespace pimlib::graph {

/// Accumulates flow counts per undirected edge across many groups.
class LinkFlowCounter {
public:
    void add_flow_on(int u, int v) { ++flows_[{std::min(u, v), std::max(u, v)}]; }
    [[nodiscard]] std::size_t max_flows() const;
    [[nodiscard]] std::size_t total_flows() const;
    [[nodiscard]] std::size_t links_used() const { return flows_.size(); }

private:
    std::map<std::pair<int, int>, std::size_t> flows_;
};

/// Adds the flows of one group using per-sender shortest-path trees: sender
/// s's flow occupies every edge on the union of shortest paths s → member.
void add_spt_group_flows(const AllPairs& ap, const std::vector<int>& members,
                         const std::vector<int>& senders, LinkFlowCounter& counter);

/// Adds the flows of one group using a single shared center-based tree:
/// every sender's flow traverses the whole tree (each member must receive
/// it), plus the sender's path onto the tree when the sender sits off-tree.
void add_center_tree_group_flows(const AllPairs& ap, const std::vector<int>& members,
                                 const std::vector<int>& senders, const CenterTree& tree,
                                 LinkFlowCounter& counter);

} // namespace pimlib::graph
