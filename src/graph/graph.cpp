#include "graph/graph.hpp"

#include <stdexcept>

namespace pimlib::graph {

void Graph::add_edge(int u, int v, double weight) {
    if (u == v) throw std::invalid_argument("self loops not supported");
    if (u < 0 || v < 0 || u >= node_count() || v >= node_count()) {
        throw std::out_of_range("edge endpoint out of range");
    }
    adjacency_[static_cast<std::size_t>(u)].push_back(Edge{v, weight});
    adjacency_[static_cast<std::size_t>(v)].push_back(Edge{u, weight});
    ++edge_count_;
}

bool Graph::has_edge(int u, int v) const {
    for (const Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
        if (e.to == v) return true;
    }
    return false;
}

bool Graph::connected() const {
    if (node_count() == 0) return true;
    std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
    std::vector<int> stack{0};
    seen[0] = true;
    int visited = 1;
    while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (const Edge& e : neighbors(u)) {
            if (!seen[static_cast<std::size_t>(e.to)]) {
                seen[static_cast<std::size_t>(e.to)] = true;
                ++visited;
                stack.push_back(e.to);
            }
        }
    }
    return visited == node_count();
}

} // namespace pimlib::graph
