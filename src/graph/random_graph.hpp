// Random connected graphs with a target average node degree, matching the
// paper's experimental setup: "for each node degree, we tried 500 different
// 50-node graphs" (§1.3).
#pragma once

#include <random>

#include "graph/graph.hpp"

namespace pimlib::graph {

struct RandomGraphOptions {
    int nodes = 50;
    double average_degree = 4.0;
    /// Link weights drawn uniformly from [min_weight, max_weight]; set both
    /// to 1.0 for hop-count graphs.
    double min_weight = 1.0;
    double max_weight = 10.0;
};

/// Generates a connected graph: a random spanning tree first (guaranteeing
/// connectivity), then random extra edges until the edge count reaches
/// nodes × average_degree / 2.
Graph random_connected_graph(const RandomGraphOptions& options, std::mt19937& rng);

/// Draws `count` distinct nodes uniformly from [0, nodes).
std::vector<int> sample_nodes(int nodes, int count, std::mt19937& rng);

} // namespace pimlib::graph
