// Center-based (core-based) trees and the optimal-core search used by the
// paper's Figure 2(a): "we simulated an optimal core-based tree algorithm
// over [a] large number of different random graphs" (§1.3). Wall's thesis
// (reference [11]) bounds the optimal center-based tree's maximum delay at
// 2 × the shortest-path delay — a property test enforces it.
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "graph/shortest_path.hpp"

namespace pimlib::graph {

/// A center-based tree: the union of shortest paths from the core to every
/// member. Edges are (min(u,v), max(u,v)) node pairs.
struct CenterTree {
    int core = -1;
    std::set<std::pair<int, int>> edges;
};

/// Maximum delay between any ordered pair of distinct members when all
/// traffic is routed via `core`: max over u != v of d(u,core) + d(core,v).
double core_tree_max_delay(const AllPairs& ap, const std::vector<int>& members, int core);

/// Maximum shortest-path delay between any pair of distinct members — the
/// SPT baseline of Fig. 2(a).
double spt_max_delay(const AllPairs& ap, const std::vector<int>& members);

/// The core minimizing core_tree_max_delay over all nodes (the paper's
/// "optimal core placement").
int optimal_core(const AllPairs& ap, const std::vector<int>& members);

/// Mean delay over ordered member pairs via `core` — the companion metric
/// of the paper's tree-comparison study (Wei & Estrin, reference [12]).
double core_tree_mean_delay(const AllPairs& ap, const std::vector<int>& members,
                            int core);

/// Mean shortest-path delay over ordered member pairs.
double spt_mean_delay(const AllPairs& ap, const std::vector<int>& members);

/// The core minimizing core_tree_mean_delay (reference [12] considers both
/// optimality criteria).
int optimal_core_mean(const AllPairs& ap, const std::vector<int>& members);

/// Builds the tree: union of shortest paths core → member.
CenterTree build_center_tree(const AllPairs& ap, const std::vector<int>& members,
                             int core);

} // namespace pimlib::graph
