// Abstract weighted graphs for the paper's tree-quality study (Figure 2).
// Decoupled from the packet-level simulator: the authors' own evaluation ran
// on random graphs, not protocol simulations, and so do bench/fig2a and
// bench/fig2b.
#pragma once

#include <cstdint>
#include <vector>

namespace pimlib::graph {

/// Undirected weighted graph with nodes 0..n-1.
class Graph {
public:
    explicit Graph(int n) : adjacency_(static_cast<std::size_t>(n)) {}

    struct Edge {
        int to;
        double weight;
    };

    void add_edge(int u, int v, double weight);
    [[nodiscard]] bool has_edge(int u, int v) const;

    [[nodiscard]] int node_count() const { return static_cast<int>(adjacency_.size()); }
    [[nodiscard]] int edge_count() const { return edge_count_; }
    [[nodiscard]] const std::vector<Edge>& neighbors(int u) const {
        return adjacency_[static_cast<std::size_t>(u)];
    }
    [[nodiscard]] double average_degree() const {
        return node_count() == 0 ? 0.0
                                 : 2.0 * edge_count_ / static_cast<double>(node_count());
    }
    [[nodiscard]] bool connected() const;

private:
    std::vector<std::vector<Edge>> adjacency_;
    int edge_count_ = 0;
};

} // namespace pimlib::graph
