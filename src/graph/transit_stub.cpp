#include "graph/transit_stub.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimlib::graph {

namespace {

/// Connects `nodes` (global ids) into a random connected subgraph of `g`:
/// a uniform random recursive tree first, then `extra` redundant edges
/// (skipping duplicates; bounded attempts so dense domains terminate).
void connect_domain(Graph& g, const std::vector<int>& nodes, int extra,
                    double weight, std::mt19937& rng) {
    const int n = static_cast<int>(nodes.size());
    std::vector<int> order = nodes;
    std::shuffle(order.begin(), order.end(), rng);
    for (int i = 1; i < n; ++i) {
        std::uniform_int_distribution<int> pick(0, i - 1);
        g.add_edge(order[static_cast<std::size_t>(i)],
                   order[static_cast<std::size_t>(pick(rng))], weight);
    }
    if (n < 3) return;
    std::uniform_int_distribution<int> any(0, n - 1);
    const int max_extra = n * (n - 1) / 2 - (n - 1);
    int added = 0;
    int attempts = 0;
    const int budget = 16 * std::max(extra, 1);
    while (added < std::min(extra, max_extra) && attempts++ < budget) {
        const int u = nodes[static_cast<std::size_t>(any(rng))];
        const int v = nodes[static_cast<std::size_t>(any(rng))];
        if (u == v || g.has_edge(u, v)) continue;
        g.add_edge(u, v, weight);
        ++added;
    }
}

} // namespace

TransitStubGraph transit_stub_graph(const TransitStubOptions& options, std::mt19937& rng) {
    if (options.transit_domains < 1 || options.transit_nodes < 1 ||
        options.stub_domains < 0 || options.stub_nodes < 1) {
        throw std::invalid_argument("transit_stub_graph: non-positive size");
    }

    const int transit_total = options.transit_domains * options.transit_nodes;
    const int stub_domain_total = transit_total * options.stub_domains;
    const int total = transit_total + stub_domain_total * options.stub_nodes;

    TransitStubGraph out;
    out.graph = Graph(total);
    out.is_transit.assign(static_cast<std::size_t>(total), false);
    out.domain.assign(static_cast<std::size_t>(total), -1);

    // Transit nodes come first: domain d owns [d*transit_nodes, (d+1)*...).
    std::vector<std::vector<int>> transit_members(
        static_cast<std::size_t>(options.transit_domains));
    for (int id = 0; id < transit_total; ++id) {
        const int d = id / options.transit_nodes;
        out.is_transit[static_cast<std::size_t>(id)] = true;
        out.domain[static_cast<std::size_t>(id)] = d;
        out.transit_nodes.push_back(id);
        transit_members[static_cast<std::size_t>(d)].push_back(id);
    }
    for (const auto& members : transit_members) {
        connect_domain(out.graph, members,
                       static_cast<int>(members.size() * options.transit_redundancy),
                       options.transit_weight, rng);
    }

    // Inter-domain transit links: a random recursive tree over domains keeps
    // the core connected; endpoints are random nodes of each domain.
    for (int d = 1; d < options.transit_domains; ++d) {
        std::uniform_int_distribution<int> pick_domain(0, d - 1);
        const auto& from = transit_members[static_cast<std::size_t>(d)];
        const auto& to = transit_members[static_cast<std::size_t>(pick_domain(rng))];
        std::uniform_int_distribution<int> pick_from(0, static_cast<int>(from.size()) - 1);
        std::uniform_int_distribution<int> pick_to(0, static_cast<int>(to.size()) - 1);
        int u = from[static_cast<std::size_t>(pick_from(rng))];
        int v = to[static_cast<std::size_t>(pick_to(rng))];
        if (!out.graph.has_edge(u, v)) {
            out.graph.add_edge(u, v, options.transit_weight);
        }
    }

    // Stub domains: each transit node sponsors `stub_domains` of them, each
    // a connected subgraph with one access link up to its sponsor.
    int next = transit_total;
    int next_domain = options.transit_domains;
    for (int sponsor : out.transit_nodes) {
        for (int s = 0; s < options.stub_domains; ++s) {
            std::vector<int> members;
            for (int k = 0; k < options.stub_nodes; ++k) {
                const int id = next++;
                out.domain[static_cast<std::size_t>(id)] = next_domain;
                out.stub_nodes.push_back(id);
                members.push_back(id);
            }
            connect_domain(out.graph, members,
                           static_cast<int>(members.size() * options.stub_redundancy),
                           options.stub_weight, rng);
            std::uniform_int_distribution<int> gateway(
                0, static_cast<int>(members.size()) - 1);
            out.graph.add_edge(members[static_cast<std::size_t>(gateway(rng))],
                               sponsor, options.access_weight);
            out.stub_attachment.push_back(sponsor);
            ++next_domain;
        }
    }

    return out;
}

} // namespace pimlib::graph
