#include "graph/center_tree.hpp"

#include <limits>

namespace pimlib::graph {

double core_tree_max_delay(const AllPairs& ap, const std::vector<int>& members,
                           int core) {
    // max over ordered pairs (u, v), u != v, of d(u,core) + d(core,v) equals
    // top1 + top2 of member→core distances (the max and second max; the same
    // member cannot be both endpoints).
    double top1 = -1.0;
    double top2 = -1.0;
    for (int m : members) {
        const double d = ap.distance(m, core);
        if (d > top1) {
            top2 = top1;
            top1 = d;
        } else if (d > top2) {
            top2 = d;
        }
    }
    if (members.size() < 2) return 0.0;
    return top1 + top2;
}

double spt_max_delay(const AllPairs& ap, const std::vector<int>& members) {
    double best = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
            best = std::max(best, ap.distance(members[i], members[j]));
        }
    }
    return best;
}

int optimal_core(const AllPairs& ap, const std::vector<int>& members) {
    int best_core = -1;
    double best_delay = std::numeric_limits<double>::infinity();
    for (int c = 0; c < ap.node_count(); ++c) {
        const double d = core_tree_max_delay(ap, members, c);
        if (d < best_delay) {
            best_delay = d;
            best_core = c;
        }
    }
    return best_core;
}

double core_tree_mean_delay(const AllPairs& ap, const std::vector<int>& members,
                            int core) {
    if (members.size() < 2) return 0.0;
    // mean over ordered pairs (u,v), u != v, of d(u,core)+d(core,v)
    //   = 2 * (n-1)/ (n(n-1)) * sum_u d(u,core) * ... simplified directly:
    double sum = 0.0;
    for (int m : members) sum += ap.distance(m, core);
    const double n = static_cast<double>(members.size());
    // Each member's distance appears (n-1) times as sender and (n-1) as
    // receiver over n(n-1) ordered pairs: mean = 2*sum*(n-1) / (n(n-1)).
    return 2.0 * sum / n;
}

double spt_mean_delay(const AllPairs& ap, const std::vector<int>& members) {
    if (members.size() < 2) return 0.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
            sum += ap.distance(members[i], members[j]);
            ++pairs;
        }
    }
    return sum / static_cast<double>(pairs);
}

int optimal_core_mean(const AllPairs& ap, const std::vector<int>& members) {
    int best_core = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int c = 0; c < ap.node_count(); ++c) {
        const double d = core_tree_mean_delay(ap, members, c);
        if (d < best) {
            best = d;
            best_core = c;
        }
    }
    return best_core;
}

CenterTree build_center_tree(const AllPairs& ap, const std::vector<int>& members,
                             int core) {
    CenterTree tree;
    tree.core = core;
    const ShortestPathTree& spt = ap.tree(core);
    for (int m : members) {
        const std::vector<int> path = spt.path_to(m);
        for (std::size_t i = 1; i < path.size(); ++i) {
            const int u = path[i - 1];
            const int v = path[i];
            tree.edges.insert({std::min(u, v), std::max(u, v)});
        }
    }
    return tree;
}

} // namespace pimlib::graph
