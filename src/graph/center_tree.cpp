#include "graph/center_tree.hpp"

#include <limits>

#include "graph/tree_metrics.hpp"

namespace pimlib::graph {

namespace {

std::vector<double> core_delays(const AllPairs& ap, const std::vector<int>& members,
                                int core) {
    std::vector<double> r;
    r.reserve(members.size());
    for (int m : members) r.push_back(ap.distance(m, core));
    return r;
}

} // namespace

double core_tree_max_delay(const AllPairs& ap, const std::vector<int>& members,
                           int core) {
    return max_via_root_delay(core_delays(ap, members, core));
}

double spt_max_delay(const AllPairs& ap, const std::vector<int>& members) {
    return max_pair_delay(members.size(), [&](std::size_t i, std::size_t j) {
        return ap.distance(members[i], members[j]);
    });
}

int optimal_core(const AllPairs& ap, const std::vector<int>& members) {
    int best_core = -1;
    double best_delay = std::numeric_limits<double>::infinity();
    for (int c = 0; c < ap.node_count(); ++c) {
        const double d = core_tree_max_delay(ap, members, c);
        if (d < best_delay) {
            best_delay = d;
            best_core = c;
        }
    }
    return best_core;
}

double core_tree_mean_delay(const AllPairs& ap, const std::vector<int>& members,
                            int core) {
    return mean_via_root_delay(core_delays(ap, members, core));
}

double spt_mean_delay(const AllPairs& ap, const std::vector<int>& members) {
    return mean_pair_delay(members.size(), [&](std::size_t i, std::size_t j) {
        return ap.distance(members[i], members[j]);
    });
}

int optimal_core_mean(const AllPairs& ap, const std::vector<int>& members) {
    int best_core = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int c = 0; c < ap.node_count(); ++c) {
        const double d = core_tree_mean_delay(ap, members, c);
        if (d < best) {
            best = d;
            best_core = c;
        }
    }
    return best_core;
}

CenterTree build_center_tree(const AllPairs& ap, const std::vector<int>& members,
                             int core) {
    CenterTree tree;
    tree.core = core;
    const ShortestPathTree& spt = ap.tree(core);
    for (int m : members) {
        const std::vector<int> path = spt.path_to(m);
        for (std::size_t i = 1; i < path.size(); ++i) {
            const int u = path[i - 1];
            const int v = path[i];
            tree.edges.insert({std::min(u, v), std::max(u, v)});
        }
    }
    return tree;
}

} // namespace pimlib::graph
