#include "graph/tree_metrics.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace pimlib::graph {

double max_via_root_delay(const std::vector<double>& root_delay) {
    if (root_delay.size() < 2) return 0.0;
    // max over ordered pairs (u, v), u != v, of r_u + r_v equals top1 + top2
    // of the member→root delays (the same member cannot be both endpoints).
    double top1 = -1.0;
    double top2 = -1.0;
    for (double d : root_delay) {
        if (d > top1) {
            top2 = top1;
            top1 = d;
        } else if (d > top2) {
            top2 = d;
        }
    }
    return top1 + top2;
}

double mean_via_root_delay(const std::vector<double>& root_delay) {
    if (root_delay.size() < 2) return 0.0;
    // Each member's delay appears (n-1) times as sender and (n-1) times as
    // receiver over n(n-1) ordered pairs: mean = 2 * sum / n.
    double sum = 0.0;
    for (double d : root_delay) sum += d;
    return 2.0 * sum / static_cast<double>(root_delay.size());
}

double max_pair_delay(std::size_t n, const PairDelayFn& pair_delay) {
    double best = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            best = std::max(best, pair_delay(i, j));
        }
    }
    return best;
}

double mean_pair_delay(std::size_t n, const PairDelayFn& pair_delay) {
    if (n < 2) return 0.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            sum += pair_delay(i, j);
            ++pairs;
        }
    }
    return sum / static_cast<double>(pairs);
}

DelayRatio delay_ratio_via_root(const std::vector<double>& root_delay,
                                const PairDelayFn& pair_delay) {
    DelayRatio r;
    r.tree_max = max_via_root_delay(root_delay);
    r.tree_mean = mean_via_root_delay(root_delay);
    r.spt_max = max_pair_delay(root_delay.size(), pair_delay);
    r.spt_mean = mean_pair_delay(root_delay.size(), pair_delay);
    if (r.spt_max > 0.0) r.max_ratio = r.tree_max / r.spt_max;
    if (r.spt_mean > 0.0) r.mean_ratio = r.tree_mean / r.spt_mean;
    return r;
}

DelayRatio center_tree_delay_ratio(const AllPairs& ap, const std::vector<int>& members,
                                   int core) {
    std::vector<double> root_delay;
    root_delay.reserve(members.size());
    for (int m : members) root_delay.push_back(ap.distance(m, core));
    return delay_ratio_via_root(root_delay, [&](std::size_t i, std::size_t j) {
        return ap.distance(members[i], members[j]);
    });
}

void FlowLoad::add(int edge_id, std::size_t count) {
    if (edge_id < 0) return;
    const auto id = static_cast<std::size_t>(edge_id);
    if (flows_.size() <= id) flows_.resize(id + 1, 0);
    flows_[id] += count;
}

std::size_t FlowLoad::max_flows() const {
    std::size_t best = 0;
    for (std::size_t n : flows_) best = std::max(best, n);
    return best;
}

std::size_t FlowLoad::total_flows() const {
    std::size_t total = 0;
    for (std::size_t n : flows_) total += n;
    return total;
}

std::size_t FlowLoad::links_used() const {
    std::size_t used = 0;
    for (std::size_t n : flows_) used += n > 0 ? 1 : 0;
    return used;
}

std::size_t LinkFlowCounter::max_flows() const {
    std::size_t best = 0;
    for (const auto& [edge, n] : flows_) best = std::max(best, n);
    return best;
}

std::size_t LinkFlowCounter::total_flows() const {
    std::size_t total = 0;
    for (const auto& [edge, n] : flows_) total += n;
    return total;
}

void add_spt_group_flows(const AllPairs& ap, const std::vector<int>& members,
                         const std::vector<int>& senders, LinkFlowCounter& counter) {
    for (int s : senders) {
        const ShortestPathTree& spt = ap.tree(s);
        std::set<std::pair<int, int>> edges;
        for (int m : members) {
            if (m == s) continue;
            const std::vector<int> path = spt.path_to(m);
            for (std::size_t i = 1; i < path.size(); ++i) {
                edges.insert({std::min(path[i - 1], path[i]),
                              std::max(path[i - 1], path[i])});
            }
        }
        for (const auto& [u, v] : edges) counter.add_flow_on(u, v);
    }
}

void add_center_tree_group_flows(const AllPairs& ap,
                                 const std::vector<int>& /*members*/,
                                 const std::vector<int>& senders,
                                 const CenterTree& tree, LinkFlowCounter& counter) {
    // The set of nodes on the shared tree.
    std::set<int> tree_nodes;
    tree_nodes.insert(tree.core);
    for (const auto& [u, v] : tree.edges) {
        tree_nodes.insert(u);
        tree_nodes.insert(v);
    }
    for (int s : senders) {
        std::set<std::pair<int, int>> edges = tree.edges; // whole shared tree
        if (!tree_nodes.contains(s)) {
            // Off-tree sender: its packets travel to the nearest tree node
            // (the core in classic CBT; we use the shortest path to the
            // core, matching our protocol implementation).
            const std::vector<int> path = ap.tree(tree.core).path_to(s);
            for (std::size_t i = 1; i < path.size(); ++i) {
                edges.insert({std::min(path[i - 1], path[i]),
                              std::max(path[i - 1], path[i])});
            }
        }
        for (const auto& [u, v] : edges) counter.add_flow_on(u, v);
    }
}

} // namespace pimlib::graph
