#include "graph/tree_metrics.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace pimlib::graph {

std::size_t LinkFlowCounter::max_flows() const {
    std::size_t best = 0;
    for (const auto& [edge, n] : flows_) best = std::max(best, n);
    return best;
}

std::size_t LinkFlowCounter::total_flows() const {
    std::size_t total = 0;
    for (const auto& [edge, n] : flows_) total += n;
    return total;
}

void add_spt_group_flows(const AllPairs& ap, const std::vector<int>& members,
                         const std::vector<int>& senders, LinkFlowCounter& counter) {
    for (int s : senders) {
        const ShortestPathTree& spt = ap.tree(s);
        std::set<std::pair<int, int>> edges;
        for (int m : members) {
            if (m == s) continue;
            const std::vector<int> path = spt.path_to(m);
            for (std::size_t i = 1; i < path.size(); ++i) {
                edges.insert({std::min(path[i - 1], path[i]),
                              std::max(path[i - 1], path[i])});
            }
        }
        for (const auto& [u, v] : edges) counter.add_flow_on(u, v);
    }
}

void add_center_tree_group_flows(const AllPairs& ap,
                                 const std::vector<int>& /*members*/,
                                 const std::vector<int>& senders,
                                 const CenterTree& tree, LinkFlowCounter& counter) {
    // The set of nodes on the shared tree.
    std::set<int> tree_nodes;
    tree_nodes.insert(tree.core);
    for (const auto& [u, v] : tree.edges) {
        tree_nodes.insert(u);
        tree_nodes.insert(v);
    }
    for (int s : senders) {
        std::set<std::pair<int, int>> edges = tree.edges; // whole shared tree
        if (!tree_nodes.contains(s)) {
            // Off-tree sender: its packets travel to the nearest tree node
            // (the core in classic CBT; we use the shortest path to the
            // core, matching our protocol implementation).
            const std::vector<int> path = ap.tree(tree.core).path_to(s);
            for (std::size_t i = 1; i < path.size(); ++i) {
                edges.insert({std::min(path[i - 1], path[i]),
                              std::max(path[i - 1], path[i])});
            }
        }
        for (const auto& [u, v] : edges) counter.add_flow_on(u, v);
    }
}

} // namespace pimlib::graph
