#include "graph/random_graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pimlib::graph {

Graph random_connected_graph(const RandomGraphOptions& options, std::mt19937& rng) {
    const int n = options.nodes;
    if (n < 2) throw std::invalid_argument("need at least 2 nodes");
    const int target_edges =
        std::max(n - 1, static_cast<int>(n * options.average_degree / 2.0 + 0.5));
    const int max_edges = n * (n - 1) / 2;
    if (target_edges > max_edges) {
        throw std::invalid_argument("average degree too high for node count");
    }

    Graph g(n);
    std::uniform_real_distribution<double> weight(options.min_weight, options.max_weight);

    // Random spanning tree via a random permutation: node perm[i] (i >= 1)
    // attaches to a uniformly random earlier node — a uniform random
    // recursive tree, connected by construction.
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    for (int i = 1; i < n; ++i) {
        std::uniform_int_distribution<int> pick(0, i - 1);
        g.add_edge(perm[static_cast<std::size_t>(i)],
                   perm[static_cast<std::size_t>(pick(rng))], weight(rng));
    }

    std::uniform_int_distribution<int> node(0, n - 1);
    while (g.edge_count() < target_edges) {
        const int u = node(rng);
        const int v = node(rng);
        if (u == v || g.has_edge(u, v)) continue;
        g.add_edge(u, v, weight(rng));
    }
    return g;
}

std::vector<int> sample_nodes(int nodes, int count, std::mt19937& rng) {
    if (count > nodes) throw std::invalid_argument("cannot sample more nodes than exist");
    std::vector<int> all(static_cast<std::size_t>(nodes));
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(static_cast<std::size_t>(count));
    return all;
}

} // namespace pimlib::graph
