#include "fault/fault_injector.hpp"

namespace pimlib::fault {

void FaultInjector::record(const std::string& description) {
    events_.push_back(FaultEvent{network_->simulator().now(), description});
}

void FaultInjector::schedule_at(sim::Time when, std::function<void()> fn) {
    const sim::Time now = network_->simulator().now();
    network_->simulator().schedule(when > now ? when - now : 0, std::move(fn));
}

void FaultInjector::run_resets(const topo::Router& router) {
    auto it = resets_.find(&router);
    if (it == resets_.end()) return;
    for (const auto& reset : it->second) reset();
}

void FaultInjector::cut_link(topo::Segment& segment) {
    record("cut segment " + std::to_string(segment.id()));
    segment.set_up(false);
}

void FaultInjector::restore_link(topo::Segment& segment) {
    record("restore segment " + std::to_string(segment.id()));
    segment.set_up(true);
}

void FaultInjector::crash_router(topo::Router& router) {
    if (crashed_.contains(&router)) return;
    record("crash router " + router.name());
    std::vector<int>& taken_down = crashed_[&router];
    {
        topo::Network::TopologyBatch batch{*network_};
        for (const auto& iface : router.interfaces()) {
            if (!iface.up) continue; // was down before the crash; stays down
            taken_down.push_back(iface.ifindex);
            router.set_interface_up(iface.ifindex, false);
        }
    }
    // Soft state dies with the router, not when power returns.
    run_resets(router);
}

void FaultInjector::restart_router(topo::Router& router) {
    auto it = crashed_.find(&router);
    if (it == crashed_.end()) return;
    record("restart router " + router.name());
    {
        topo::Network::TopologyBatch batch{*network_};
        for (int ifindex : it->second) router.set_interface_up(ifindex, true);
    }
    crashed_.erase(it);
    // A fresh protocol stack boots: timers restart, hellos/queries go out.
    run_resets(router);
}

void FaultInjector::partition(const std::vector<topo::Segment*>& cut_set) {
    std::string desc = "partition cutting segments [";
    for (std::size_t i = 0; i < cut_set.size(); ++i) {
        if (i > 0) desc += ",";
        desc += std::to_string(cut_set[i]->id());
    }
    record(desc + "]");
    partition_cut_ = cut_set;
    topo::Network::TopologyBatch batch{*network_};
    for (topo::Segment* segment : cut_set) segment->set_up(false);
}

void FaultInjector::heal_partition() {
    if (partition_cut_.empty()) return;
    record("heal partition");
    topo::Network::TopologyBatch batch{*network_};
    for (topo::Segment* segment : partition_cut_) segment->set_up(true);
    partition_cut_.clear();
}

void FaultInjector::set_loss(topo::Segment& segment, double rate) {
    record("loss " + std::to_string(rate) + " on segment " +
           std::to_string(segment.id()));
    segment.set_loss_rate(rate);
}

void FaultInjector::cut_link_at(sim::Time when, topo::Segment& segment) {
    schedule_at(when, [this, &segment] { cut_link(segment); });
}

void FaultInjector::restore_link_at(sim::Time when, topo::Segment& segment) {
    schedule_at(when, [this, &segment] { restore_link(segment); });
}

void FaultInjector::crash_router_at(sim::Time when, topo::Router& router) {
    schedule_at(when, [this, &router] { crash_router(router); });
}

void FaultInjector::restart_router_at(sim::Time when, topo::Router& router) {
    schedule_at(when, [this, &router] { restart_router(router); });
}

void FaultInjector::partition_at(sim::Time when, std::vector<topo::Segment*> cut_set) {
    schedule_at(when, [this, cut_set = std::move(cut_set)] { partition(cut_set); });
}

void FaultInjector::heal_partition_at(sim::Time when) {
    schedule_at(when, [this] { heal_partition(); });
}

void FaultInjector::set_loss_at(sim::Time when, topo::Segment& segment, double rate) {
    schedule_at(when, [this, &segment, rate] { set_loss(segment, rate); });
}

void FaultInjector::on_crash(const topo::Router& router, std::function<void()> reset) {
    resets_[&router].push_back(std::move(reset));
}

} // namespace pimlib::fault
