// Measures how fast the network heals after an injected fault. The probe
// wiretaps every segment (coexisting with any trace::PacketTracer thanks to
// the multi-tap registry) and, combined with each receiving Host's delivery
// log, answers the two questions the paper's robustness argument raises
// (§2.7, §3.4): how long until every receiver hears data again, and how
// much control traffic did the recovery cost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "topo/host.hpp"
#include "topo/network.hpp"

namespace pimlib::provenance {
class Recorder;
}

namespace pimlib::fault {

class ConvergenceProbe {
public:
    explicit ConvergenceProbe(topo::Network& network);
    ~ConvergenceProbe();

    ConvergenceProbe(const ConvergenceProbe&) = delete;
    ConvergenceProbe& operator=(const ConvergenceProbe&) = delete;

    struct ReceiverRecovery {
        std::string receiver;
        bool recovered = false;
        sim::Time first_delivery = 0; // absolute; valid when recovered
        sim::Time recovery = 0;       // first_delivery - fault_at
    };

    struct Report {
        sim::Time fault_at = 0;
        bool converged = false;     // every receiver heard data post-fault
        sim::Time converged_at = 0; // slowest receiver's first delivery
        sim::Time recovery = 0;     // converged_at - fault_at
        std::vector<ReceiverRecovery> receivers;
        /// Control frames transmitted anywhere in (fault_at, converged_at]
        /// — the recovery's control-message cost. When not converged, counts
        /// everything after the fault (the protocol is still trying).
        std::uint64_t control_messages = 0;
        /// Tree-health snapshot (telemetry::TreeMonitor::GroupHealth JSON —
        /// stretch, fanout, member count) for the measured group, captured
        /// at measure() time when a health source is attached. Makes a
        /// convergence failure diagnosable without a rerun.
        std::string tree_health;

        [[nodiscard]] std::string to_json() const;
    };

    /// Scans each receiver's delivery log for its first `group` data packet
    /// after `fault_at` — by the paper's soft-state argument the tree has
    /// healed once every member receives again.
    [[nodiscard]] Report measure(net::GroupAddress group,
                                 const std::vector<const topo::Host*>& receivers,
                                 sim::Time fault_at) const;

    /// Folds a report into `registry` so recovery distributions come out of
    /// the same histograms everything else uses:
    ///   pimlib_fault_recovery_seconds{fault}   (converged trials only)
    ///   pimlib_fault_control_messages{fault}   (per-recovery control cost)
    ///   pimlib_fault_trials_total{fault,converged}
    /// The registry may span many trials (bench aggregates across worlds),
    /// which is why this is static rather than tied to one network's hub.
    static void record(const Report& report, telemetry::Registry& registry,
                       const std::string& fault_label);

    /// Control frames seen on the wire so far (all protocols, all segments).
    [[nodiscard]] std::uint64_t control_frames_seen() const {
        return static_cast<std::uint64_t>(control_times_.size());
    }

    /// Attaches a provenance flight recorder (installed on the same network
    /// by the caller) so a failed trial can explain itself. The probe does
    /// not own the recorder.
    void attach_recorder(provenance::Recorder* recorder) { recorder_ = recorder; }

    /// Attaches a tree-health source — typically
    /// [&](net::GroupAddress g) { return monitor.measure_group(g).to_json(); }
    /// — queried for the offending group whenever measure() produces a
    /// report that has not (yet) converged. Kept as a callback so
    /// pimlib_fault does not depend on pimlib_monitor.
    void set_tree_health_source(std::function<std::string(net::GroupAddress)> source) {
        tree_health_source_ = std::move(source);
    }

    /// Post-mortem hook: when `report` missed its recovery bound (did not
    /// converge, or recovered slower than `bound` > 0) and a recorder is
    /// attached, returns the merged time-ordered flight-recorder dump
    /// (JSON). Empty string when the trial was within bound.
    [[nodiscard]] std::string postmortem(const Report& report, sim::Time bound) const;

private:
    topo::Network* network_;
    int tap_token_ = 0;
    std::vector<sim::Time> control_times_;
    provenance::Recorder* recorder_ = nullptr;
    std::function<std::string(net::GroupAddress)> tree_health_source_;
};

} // namespace pimlib::fault
