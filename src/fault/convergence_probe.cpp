#include "fault/convergence_probe.hpp"

#include <algorithm>
#include <sstream>

#include "provenance/provenance.hpp"

namespace pimlib::fault {

namespace {

double seconds(sim::Time t) { return static_cast<double>(t) / sim::kSecond; }

void append_seconds(std::ostringstream& out, double value) {
    const auto flags = out.flags();
    out.setf(std::ios::fixed);
    const auto precision = out.precision(6);
    out << value;
    out.flags(flags);
    out.precision(precision);
}

} // namespace

ConvergenceProbe::ConvergenceProbe(topo::Network& network) : network_(&network) {
    tap_token_ = network_->add_packet_tap(
        [this](const topo::Segment&, const net::Frame& frame) {
            if (frame.packet.proto != net::IpProto::kUdp) {
                control_times_.push_back(network_->simulator().now());
            }
        });
}

ConvergenceProbe::~ConvergenceProbe() { network_->remove_packet_tap(tap_token_); }

ConvergenceProbe::Report ConvergenceProbe::measure(
    net::GroupAddress group, const std::vector<const topo::Host*>& receivers,
    sim::Time fault_at) const {
    Report report;
    report.fault_at = fault_at;
    report.converged = !receivers.empty();

    for (const topo::Host* host : receivers) {
        ReceiverRecovery rec;
        rec.receiver = host->name();
        for (const auto& record : host->received()) {
            if (record.group != group || record.at <= fault_at) continue;
            rec.recovered = true;
            rec.first_delivery = record.at;
            rec.recovery = record.at - fault_at;
            break; // delivery log is chronological
        }
        if (!rec.recovered) report.converged = false;
        report.converged_at = std::max(report.converged_at, rec.first_delivery);
        report.receivers.push_back(std::move(rec));
    }
    if (report.converged) report.recovery = report.converged_at - fault_at;

    const sim::Time window_end =
        report.converged ? report.converged_at : network_->simulator().now();
    report.control_messages = static_cast<std::uint64_t>(std::count_if(
        control_times_.begin(), control_times_.end(),
        [&](sim::Time t) { return t > fault_at && t <= window_end; }));
    if (tree_health_source_) report.tree_health = tree_health_source_(group);
    return report;
}

void ConvergenceProbe::record(const Report& report, telemetry::Registry& registry,
                              const std::string& fault_label) {
    registry
        .counter("pimlib_fault_trials_total",
                 {{"fault", fault_label},
                  {"converged", report.converged ? "true" : "false"}},
                 "Fault-injection trials by outcome")
        .inc();
    if (!report.converged) return;
    // 1 ms .. ~135 s in 24 exponential buckets: spans triggered-join repair
    // (milliseconds at bench time-scale) out past the 3x-refresh bound.
    registry
        .histogram("pimlib_fault_recovery_seconds",
                   telemetry::Buckets::exponential(0.001, 1.6, 24),
                   {{"fault", fault_label}},
                   "Time from fault injection to every receiver hearing data")
        .observe(seconds(report.recovery));
    registry
        .histogram("pimlib_fault_control_messages",
                   telemetry::Buckets::exponential(1.0, 2.0, 16),
                   {{"fault", fault_label}},
                   "Control frames transmitted during one recovery")
        .observe(static_cast<double>(report.control_messages));
}

std::string ConvergenceProbe::postmortem(const Report& report, sim::Time bound) const {
    if (recorder_ == nullptr) return {};
    if (report.converged && (bound <= 0 || report.recovery <= bound)) return {};
    return recorder_->dump_json();
}

std::string ConvergenceProbe::Report::to_json() const {
    std::ostringstream out;
    out << "{\"fault_at_s\":";
    append_seconds(out, seconds(fault_at));
    out << ",\"converged\":" << (converged ? "true" : "false");
    out << ",\"recovery_s\":";
    append_seconds(out, converged ? seconds(recovery) : -1.0);
    out << ",\"control_messages\":" << control_messages;
    out << ",\"tree_health\":" << (tree_health.empty() ? "null" : tree_health);
    out << ",\"receivers\":[";
    for (std::size_t i = 0; i < receivers.size(); ++i) {
        const ReceiverRecovery& rec = receivers[i];
        if (i > 0) out << ",";
        out << "{\"name\":\"" << rec.receiver << "\",\"recovered\":"
            << (rec.recovered ? "true" : "false") << ",\"recovery_s\":";
        append_seconds(out, rec.recovered ? seconds(rec.recovery) : -1.0);
        out << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace pimlib::fault
