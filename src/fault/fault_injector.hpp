// Fault injection for robustness experiments (§2.7: "the architecture must
// be robust to router failures, link failures, and partitions"). The
// injector breaks a running network in controlled, scheduled ways — link
// cuts, router crashes (losing all protocol soft state, as a real reboot
// would), partitions, probabilistic segment loss — so scenarios can measure
// how the soft-state protocol machinery heals the distribution trees.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "topo/network.hpp"

namespace pimlib::fault {

/// One injected fault, for the scenario's event log.
struct FaultEvent {
    sim::Time at = 0;
    std::string description;
};

class FaultInjector {
public:
    explicit FaultInjector(topo::Network& network) : network_(&network) {}

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    // --- immediate faults -------------------------------------------------

    /// Takes a segment down. Topology observers fire (unicast RIBs
    /// recompute); in-flight frames already scheduled on the segment are
    /// destroyed at delivery time.
    void cut_link(topo::Segment& segment);
    void restore_link(topo::Segment& segment);

    /// Crashes a router: every interface goes down in one batched topology
    /// change, and the router's registered protocol resets run — all soft
    /// state (forwarding cache, neighbor tables, timers) is lost at the
    /// instant of the crash. While crashed the router neither hears nor
    /// sends anything.
    void crash_router(topo::Router& router);

    /// Restarts a crashed router: interfaces come back up and the protocol
    /// resets run again, modelling a freshly booted protocol stack that
    /// must relearn everything from IGMP reports, hellos, and joins.
    void restart_router(topo::Router& router);

    /// Cuts a set of segments as one compound fault (single topology
    /// recomputation) — the way to split a network into partitions.
    void partition(const std::vector<topo::Segment*>& cut_set);
    /// Restores every segment cut by the most recent partition().
    void heal_partition();

    /// Per-frame loss probability on a segment (see Segment::set_loss_rate).
    void set_loss(topo::Segment& segment, double rate);

    // --- scheduled variants (absolute simulated time) ---------------------

    void cut_link_at(sim::Time when, topo::Segment& segment);
    void restore_link_at(sim::Time when, topo::Segment& segment);
    void crash_router_at(sim::Time when, topo::Router& router);
    void restart_router_at(sim::Time when, topo::Router& router);
    void partition_at(sim::Time when, std::vector<topo::Segment*> cut_set);
    void heal_partition_at(sim::Time when);
    void set_loss_at(sim::Time when, topo::Segment& segment, double rate);

    // --- protocol wiring --------------------------------------------------

    /// Registers a reset hook for `router`, run on crash and on restart.
    /// Scenario stacks register their protocol reboots here, e.g.
    /// `injector.on_crash(r, [&] { pim.reboot(); igmp.reboot(); });`.
    /// Several hooks per router compose (run in registration order).
    void on_crash(const topo::Router& router, std::function<void()> reset);

    [[nodiscard]] bool is_crashed(const topo::Router& router) const {
        return crashed_.contains(&router);
    }

    /// Everything injected so far, in injection order.
    [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

private:
    void record(const std::string& description);
    void schedule_at(sim::Time when, std::function<void()> fn);
    void run_resets(const topo::Router& router);

    topo::Network* network_;
    std::map<const topo::Router*, std::vector<std::function<void()>>, topo::NodeIdLess> resets_;
    // Interfaces that were already down before the crash stay down on
    // restart: crashed_[router] = ifindexes we took down.
    std::map<const topo::Router*, std::vector<int>, topo::NodeIdLess> crashed_;
    std::vector<topo::Segment*> partition_cut_;
    std::vector<FaultEvent> events_;
};

} // namespace pimlib::fault
