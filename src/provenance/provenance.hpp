// Packet provenance: a bounded per-router flight recorder plus typed drop
// accounting, the causal layer under the aggregate telemetry of PR 2.
//
// Every data packet is stamped at origination with a provenance id derived
// from (src, group, seq) — the id survives replication, register/DataEncap
// encapsulation (the decapsulator restamps with the same function) and TTL
// decrements, so one id names one end-to-end packet. Each forwarding
// decision appends a HopRecord (matched MRIB entry kind, RPF verdict,
// SPT/RP bits, the oif fan-out actually used, or a typed DropReason) into
// the router's ring buffer. Post-mortem queries reconstruct paths:
//
//   trace(src, group, dst)  the mtrace-style query — hop path and per-hop
//                           sim-time latency of the last matching packet
//                           delivered to host `dst`
//   dump_json()             merged, time-ordered recorder contents plus
//                           per-router drop aggregates and the packets that
//                           vanished without reaching any host
//
// Cost model: with no Recorder attached to the Network, every hook is a
// single pointer test (compiled in, idle, ~0). With a Recorder attached,
// appends are O(1) into preallocated rings (<8% wall-clock; enforced by
// bench/provenance_overhead --check). Typed drops also increment labeled
// `pimlib_forward_drops_total{reason=...}` counters in the shared registry.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pimlib::provenance {

/// Why a data packet was discarded. kNone marks a forwarding record.
enum class DropReason : std::uint8_t {
    kNone = 0,
    kRpfFail,     // arrived on the wrong incoming interface (§3.5 iif check)
    kNegCache,    // matched an RP-bit negative-cache entry with nothing downstream (§3.3)
    kNoOif,       // entry matched on the right iif but its oif list is empty
    kTtl,         // TTL exhausted
    kSegmentLoss, // vanished on the wire (injected or checker-forced loss)
    kNoState,     // no matching entry and the protocol declined to create one
    kAssertLoser, // a non-DR router on the source LAN suppressing duplicates
                  // (the '94 architecture's stand-in for an Assert loser)
    kNoRoute,     // unicast leg (register/encap) had no route to its target
};
inline constexpr std::size_t kDropReasonCount = 9;

/// Stable label for metrics and JSON: "rpf-fail", "neg-cache", ...
[[nodiscard]] const char* drop_reason_label(DropReason reason);

/// What matched (or what stage of the pipeline produced the record).
enum class EntryKind : std::uint8_t {
    kNone = 0,     // no MRIB entry involved (e.g. no-state drops)
    kWildcard,     // (*,G) shared-tree entry
    kSg,           // (S,G) shortest-path entry
    kSgFallbackWc, // (S,G) without SPT bit fell back to (*,G) (§3.5 first exception)
    kNegCache,     // (S,G)RP-bit negative cache
    kTree,         // CBT bidirectional tree state
    kUnicast,      // unicast leg of an encapsulated data packet
    kRegister,     // encapsulated toward the RP / CBT core
    kOrigin,       // source host put the packet on its LAN
    kDeliver,      // member host consumed the packet
};
[[nodiscard]] const char* entry_kind_label(EntryKind kind);

/// Provenance id stamped into net::Packet::pid at origination (and restamped
/// after decapsulation). splitmix64 finalizer over (src, dst, seq); never 0
/// — 0 means "unstamped" (control traffic) and is skipped by the recorder.
[[nodiscard]] std::uint64_t packet_id(net::Ipv4Address src, net::Ipv4Address dst,
                                      std::uint64_t seq);

inline constexpr int kMaxRecordedOifs = 8;

/// One forwarding decision (or discard) at one node. Packed into exactly
/// one cache line on purpose: ring buffers preallocate, appends never
/// allocate, and each append dirties a single line — the recorder's cost
/// is bounded by memory traffic, not CPU (see bench/provenance_overhead).
struct alignas(64) HopRecord {
    std::uint64_t pid = 0;
    sim::Time at = 0;
    /// Recorder-global append index: the merge tiebreaker for same-instant
    /// records (the sim executes same-time events in a deterministic order;
    /// this preserves it across per-node rings).
    std::uint64_t order = 0;
    std::uint64_t seq = 0;
    net::Ipv4Address src;
    net::Ipv4Address group;      // packet.dst
    std::int32_t node = -1;      // topo node id
    std::int16_t iif = -1;       // arrival interface; -1 for decap/origination
    std::int16_t segment = -1;   // segment-loss records: the vanished-on wire
    EntryKind kind = EntryKind::kNone;
    DropReason drop = DropReason::kNone;
    bool rpf_ok = true;
    bool spt_bit = false;
    bool rp_bit = false;
    std::uint8_t ttl = 0;
    std::uint8_t oif_count = 0; // interfaces actually forwarded on
    std::array<std::int8_t, kMaxRecordedOifs> oifs{};

    /// Convenience for call sites building the oif set. Interface indexes
    /// above int8 range are clamped (no router here has >127 interfaces).
    void add_oif(int ifindex) {
        if (oif_count < kMaxRecordedOifs) {
            oifs[oif_count] =
                static_cast<std::int8_t>(ifindex > 127 ? 127 : ifindex);
        }
        ++oif_count;
    }
};
static_assert(sizeof(HopRecord) == 64, "HopRecord must stay one cache line");

struct RecorderConfig {
    /// HopRecords retained per node (ring overwrites the oldest). The
    /// default keeps each ring ~40 KB so steady-state appends cycle through
    /// cache-resident memory; much larger rings never wrap in short runs and
    /// every append then writes cold lines, which is what pushes the
    /// recorder past its <8% wall-clock budget (see bench/provenance_overhead
    /// --ring for the sweep).
    std::size_t ring_capacity = 512;
};

/// The flight recorder: per-node bounded rings plus the labeled drop
/// counters. One Recorder serves one Network (attach via
/// topo::Network::set_provenance); hooks check the attachment pointer and
/// enabled() before paying any recording cost.
class Recorder {
public:
    explicit Recorder(telemetry::Registry& registry, RecorderConfig config = {});

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// Idle switch: when false, append() is a no-op after one branch. The
    /// overhead bench's "compiled-in but idle" mode.
    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Name lookup for traces/dumps; hosts are trace endpoints.
    void register_node(int node_id, std::string name, bool is_host);

    /// Appends into `rec.node`'s ring; a non-kNone drop also increments
    /// pimlib_forward_drops_total{reason=...}.
    void append(const HopRecord& rec);

    /// Hot-path variant of append(): returns `node`'s next ring slot —
    /// reset to defaults with `node` and the merge order already stamped —
    /// for the caller to fill in place (append() costs one extra 64-byte
    /// copy per hop). Call commit() after filling so a typed drop lands in
    /// the counters. nullptr when the recorder is disabled. Defined inline
    /// so per-hop call sites pay no cross-TU call.
    [[nodiscard]] HopRecord* begin(int node) {
        if (!enabled_ || node < 0) return nullptr;
        const auto id = static_cast<std::size_t>(node);
        if (rings_.size() <= id) rings_.resize(id + 1);
        Ring& ring = rings_[id];
        if (ring.buf.empty()) ring.buf.reserve(config_.ring_capacity);
        HopRecord* slot;
        if (ring.buf.size() < config_.ring_capacity) {
            slot = &ring.buf.emplace_back();
        } else {
            slot = &ring.buf[ring.next];
            *slot = HopRecord{};
            ring.next = ring.next + 1 == config_.ring_capacity ? 0 : ring.next + 1;
        }
        slot->node = node;
        slot->order = order_++;
        ++ring.total;
        return slot;
    }

    void commit(const HopRecord& slot) {
        const auto reason = static_cast<std::size_t>(slot.drop);
        if (reason != 0 && reason < kDropReasonCount) {
            drop_counters_[reason]->inc();
            ++drop_totals_[reason];
        }
    }

    [[nodiscard]] std::uint64_t total_records() const { return order_; }
    [[nodiscard]] std::uint64_t drop_count(DropReason reason) const;

    /// Every retained record for `pid`, time-ordered. Post-mortem use.
    [[nodiscard]] std::vector<HopRecord> records_for(std::uint64_t pid) const;

    /// Every retained record across all rings, merged in (time, order)
    /// order. Offline consumers only (the timeline exporter stitches these
    /// into per-packet hop chains); cost is O(total retained records).
    [[nodiscard]] std::vector<HopRecord> all_records() const;

    struct TraceHop {
        HopRecord rec;
        sim::Time latency = 0; // sim-time since the previous hop
        std::string node_name;
    };
    struct TraceResult {
        bool found = false;
        std::uint64_t pid = 0;
        std::uint64_t seq = 0;
        std::vector<TraceHop> hops;
    };

    /// The mtrace-style query: finds the last packet from `src` to `group`
    /// delivered to host `dst_node` (by registered name) and reconstructs
    /// its full hop path with per-hop sim-time latency.
    [[nodiscard]] TraceResult trace(net::Ipv4Address src, net::Ipv4Address group,
                                    const std::string& dst_node) const;

    /// Human-readable rendering of a trace (mtrace-like, one line per hop).
    [[nodiscard]] std::string format_trace(const TraceResult& result) const;

    /// Merged, time-ordered recorder contents as JSON: {records, drops,
    /// vanished}. `drops` aggregates per (node, reason); `vanished` lists
    /// packets whose last retained record is not a host delivery — with the
    /// node and DropReason (or forwarding oifs) where the trail ends.
    [[nodiscard]] std::string dump_json() const;

    /// One-line per-router drop aggregate ("A rpf-fail x12, ..."), empty
    /// when nothing was dropped. The post-mortem headline.
    [[nodiscard]] std::string drop_summary() const;

    [[nodiscard]] const std::string& node_name(int node_id) const;

private:
    struct Ring {
        std::vector<HopRecord> buf; // size() < capacity while filling
        std::size_t next = 0;       // overwrite cursor once full
        std::uint64_t total = 0;
    };
    struct NodeInfo {
        std::string name;
        bool is_host = false;
    };

    void for_each_record(const std::function<void(const HopRecord&)>& fn) const;
    [[nodiscard]] std::vector<const HopRecord*> merged_records() const;

    telemetry::Registry* registry_;
    RecorderConfig config_;
    bool enabled_ = true;
    std::uint64_t order_ = 0;
    std::array<telemetry::Counter*, kDropReasonCount> drop_counters_{};
    std::array<std::uint64_t, kDropReasonCount> drop_totals_{};
    std::vector<Ring> rings_;     // indexed by node id
    std::vector<NodeInfo> nodes_; // indexed by node id
};

} // namespace pimlib::provenance
