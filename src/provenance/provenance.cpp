#include "provenance/provenance.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace pimlib::provenance {
namespace {

constexpr const char* kDropLabels[kDropReasonCount] = {
    "none",       "rpf-fail",     "neg-cache", "no-oif",  "ttl",
    "segment-loss", "no-state", "assert-loser", "no-route"};

constexpr const char* kKindLabels[] = {
    "none",      "(*,G)",    "(S,G)",   "(S,G)->(*,G)", "neg-cache",
    "cbt-tree",  "unicast",  "register", "origin",       "deliver"};

const std::string kUnknownNode = "?";

std::string json_escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string time_ms(sim::Time t) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(t) / sim::kMillisecond);
    return buf;
}

std::string oif_list(const HopRecord& rec) {
    std::string out = "[";
    const int shown = std::min<int>(rec.oif_count, kMaxRecordedOifs);
    for (int i = 0; i < shown; ++i) {
        if (i > 0) out += ",";
        out += std::to_string(rec.oifs[static_cast<std::size_t>(i)]);
    }
    if (rec.oif_count > kMaxRecordedOifs) out += ",...";
    out += "]";
    return out;
}

} // namespace

const char* drop_reason_label(DropReason reason) {
    const auto i = static_cast<std::size_t>(reason);
    return i < kDropReasonCount ? kDropLabels[i] : "unknown";
}

const char* entry_kind_label(EntryKind kind) {
    const auto i = static_cast<std::size_t>(kind);
    return i < std::size(kKindLabels) ? kKindLabels[i] : "unknown";
}

std::uint64_t packet_id(net::Ipv4Address src, net::Ipv4Address dst,
                        std::uint64_t seq) {
    std::uint64_t x = (static_cast<std::uint64_t>(src.to_uint()) << 32) |
                      static_cast<std::uint64_t>(dst.to_uint());
    x ^= seq * 0x9E3779B97F4A7C15ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x == 0 ? 1 : x;
}

Recorder::Recorder(telemetry::Registry& registry, RecorderConfig config)
    : registry_(&registry), config_(config) {
    if (config_.ring_capacity == 0) config_.ring_capacity = 1;
    for (std::size_t i = 1; i < kDropReasonCount; ++i) {
        drop_counters_[i] = &registry_->counter(
            "pimlib_forward_drops_total",
            telemetry::LabelSet{{"reason", kDropLabels[i]}},
            "Data packets discarded, by typed DropReason");
    }
}

void Recorder::register_node(int node_id, std::string name, bool is_host) {
    if (node_id < 0) return;
    const auto id = static_cast<std::size_t>(node_id);
    if (nodes_.size() <= id) nodes_.resize(id + 1);
    nodes_[id] = NodeInfo{std::move(name), is_host};
}

void Recorder::append(const HopRecord& rec) {
    HopRecord* slot = begin(rec.node);
    if (slot == nullptr) return;
    const std::uint64_t order = slot->order;
    *slot = rec;
    slot->order = order;
    commit(*slot);
}

std::uint64_t Recorder::drop_count(DropReason reason) const {
    const auto i = static_cast<std::size_t>(reason);
    return i < kDropReasonCount ? drop_totals_[i] : 0;
}

const std::string& Recorder::node_name(int node_id) const {
    const auto id = static_cast<std::size_t>(node_id);
    if (node_id < 0 || id >= nodes_.size() || nodes_[id].name.empty()) {
        return kUnknownNode;
    }
    return nodes_[id].name;
}

void Recorder::for_each_record(
    const std::function<void(const HopRecord&)>& fn) const {
    for (const Ring& ring : rings_) {
        for (const HopRecord& rec : ring.buf) fn(rec);
    }
}

std::vector<const HopRecord*> Recorder::merged_records() const {
    std::vector<const HopRecord*> out;
    for_each_record([&](const HopRecord& rec) { out.push_back(&rec); });
    std::sort(out.begin(), out.end(), [](const HopRecord* a, const HopRecord* b) {
        return a->order < b->order; // order is already time-monotonic
    });
    return out;
}

std::vector<HopRecord> Recorder::all_records() const {
    std::vector<HopRecord> out;
    for (const HopRecord* rec : merged_records()) out.push_back(*rec);
    return out;
}

std::vector<HopRecord> Recorder::records_for(std::uint64_t pid) const {
    std::vector<HopRecord> out;
    for_each_record([&](const HopRecord& rec) {
        if (rec.pid == pid) out.push_back(rec);
    });
    std::sort(out.begin(), out.end(),
              [](const HopRecord& a, const HopRecord& b) { return a.order < b.order; });
    return out;
}

Recorder::TraceResult Recorder::trace(net::Ipv4Address src, net::Ipv4Address group,
                                      const std::string& dst_node) const {
    TraceResult result;
    // Find the most recent delivery of a matching packet at the target host.
    const HopRecord* last = nullptr;
    for_each_record([&](const HopRecord& rec) {
        if (rec.kind != EntryKind::kDeliver) return;
        if (rec.src != src || rec.group != group) return;
        if (node_name(rec.node) != dst_node) return;
        if (last == nullptr || rec.order > last->order) last = &rec;
    });
    if (last == nullptr) return result;

    result.found = true;
    result.pid = last->pid;
    result.seq = last->seq;
    sim::Time prev = 0;
    bool first = true;
    for (const HopRecord& rec : records_for(last->pid)) {
        TraceHop hop;
        hop.rec = rec;
        hop.latency = first ? 0 : rec.at - prev;
        hop.node_name = node_name(rec.node);
        prev = rec.at;
        first = false;
        result.hops.push_back(std::move(hop));
    }
    return result;
}

std::string Recorder::format_trace(const TraceResult& result) const {
    if (!result.found) return "mtrace: no matching delivery recorded\n";
    char head[128];
    std::snprintf(head, sizeof(head), "mtrace: pid=%016" PRIx64 " seq=%" PRIu64 "\n",
                  result.pid, result.seq);
    std::string out = head;
    for (std::size_t i = 0; i < result.hops.size(); ++i) {
        const TraceHop& hop = result.hops[i];
        const HopRecord& rec = hop.rec;
        char line[192];
        std::snprintf(line, sizeof(line), "  %2zu  t=%-10s +%-9s %-10s %-12s", i,
                      time_ms(rec.at).c_str(), time_ms(hop.latency).c_str(),
                      hop.node_name.c_str(), entry_kind_label(rec.kind));
        out += line;
        if (rec.kind != EntryKind::kOrigin && rec.kind != EntryKind::kDeliver) {
            out += " iif=" + std::to_string(rec.iif);
            out += " oifs=" + oif_list(rec);
            out += rec.rpf_ok ? " rpf=ok" : " rpf=FAIL";
            if (rec.spt_bit) out += " spt";
            if (rec.rp_bit) out += " rp";
        }
        if (rec.drop != DropReason::kNone) {
            out += std::string(" DROP:") + drop_reason_label(rec.drop);
        }
        out += "\n";
    }
    return out;
}

std::string Recorder::drop_summary() const {
    // (node, reason) -> count, from the retained records.
    std::map<std::pair<int, std::uint8_t>, std::uint64_t> agg;
    for_each_record([&](const HopRecord& rec) {
        if (rec.drop != DropReason::kNone) {
            ++agg[{rec.node, static_cast<std::uint8_t>(rec.drop)}];
        }
    });
    std::string out;
    for (const auto& [key, count] : agg) {
        if (!out.empty()) out += ", ";
        out += node_name(key.first);
        out += " ";
        out += drop_reason_label(static_cast<DropReason>(key.second));
        out += " x" + std::to_string(count);
    }
    return out;
}

std::string Recorder::dump_json() const {
    const std::vector<const HopRecord*> merged = merged_records();

    std::string out = "{\n  \"records\": [\n";
    for (std::size_t i = 0; i < merged.size(); ++i) {
        const HopRecord& rec = *merged[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"order\":%" PRIu64 ",\"at_us\":%lld,\"node\":\"%s\","
            "\"pid\":\"%016" PRIx64 "\",\"src\":\"%s\",\"group\":\"%s\","
            "\"seq\":%" PRIu64 ",\"kind\":\"%s\",\"iif\":%d,\"oifs\":%s,"
            "\"rpf_ok\":%s,\"spt\":%s,\"rp\":%s,\"ttl\":%u,\"drop\":\"%s\"}",
            rec.order, static_cast<long long>(rec.at),
            json_escape(node_name(rec.node)).c_str(), rec.pid,
            rec.src.to_string().c_str(), rec.group.to_string().c_str(), rec.seq,
            entry_kind_label(rec.kind), rec.iif, oif_list(rec).c_str(),
            rec.rpf_ok ? "true" : "false", rec.spt_bit ? "true" : "false",
            rec.rp_bit ? "true" : "false", rec.ttl, drop_reason_label(rec.drop));
        out += buf;
        out += i + 1 < merged.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"drops\": [\n";

    std::map<std::pair<int, std::uint8_t>, std::uint64_t> agg;
    for (const HopRecord* rec : merged) {
        if (rec->drop != DropReason::kNone) {
            ++agg[{rec->node, static_cast<std::uint8_t>(rec->drop)}];
        }
    }
    std::size_t n = 0;
    for (const auto& [key, count] : agg) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "    {\"node\":\"%s\",\"reason\":\"%s\",\"count\":%" PRIu64 "}",
                      json_escape(node_name(key.first)).c_str(),
                      drop_reason_label(static_cast<DropReason>(key.second)), count);
        out += buf;
        out += ++n < agg.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"vanished\": [\n";

    // A packet whose last retained record is not a host delivery never
    // (observably) reached a member: name the node where the trail ends and
    // the DropReason (or the oif fan-out, if it was last seen forwarded).
    std::map<std::uint64_t, const HopRecord*> last_by_pid;
    std::map<std::uint64_t, bool> delivered;
    for (const HopRecord* rec : merged) {
        auto& slot = last_by_pid[rec->pid];
        if (slot == nullptr || rec->order > slot->order) slot = rec;
        if (rec->kind == EntryKind::kDeliver) delivered[rec->pid] = true;
    }
    std::vector<const HopRecord*> vanished;
    for (const auto& [pid, rec] : last_by_pid) {
        if (!delivered[pid]) vanished.push_back(rec);
    }
    std::sort(vanished.begin(), vanished.end(),
              [](const HopRecord* a, const HopRecord* b) { return a->order < b->order; });
    for (std::size_t i = 0; i < vanished.size(); ++i) {
        const HopRecord& rec = *vanished[i];
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "    {\"pid\":\"%016" PRIx64 "\",\"src\":\"%s\",\"group\":\"%s\","
                      "\"seq\":%" PRIu64 ",\"last_node\":\"%s\",\"last_at_us\":%lld,"
                      "\"drop\":\"%s\",\"oifs\":%s}",
                      rec.pid, rec.src.to_string().c_str(),
                      rec.group.to_string().c_str(), rec.seq,
                      json_escape(node_name(rec.node)).c_str(),
                      static_cast<long long>(rec.at), drop_reason_label(rec.drop),
                      oif_list(rec).c_str());
        out += buf;
        out += i + 1 < vanished.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace pimlib::provenance
