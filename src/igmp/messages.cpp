#include "igmp/messages.hpp"

namespace pimlib::igmp {

std::vector<std::uint8_t> Query::encode() const {
    net::BufWriter w(6);
    w.put_u8(kTypeQuery);
    w.put_u8(0); // max response (unused; response spread is a config knob)
    w.put_addr(group);
    return w.take();
}

std::optional<Query> Query::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto type = r.get_u8();
    if (!type || *type != kTypeQuery) return std::nullopt;
    (void)r.get_u8();
    auto group = r.get_addr();
    if (!group || !r.at_end()) return std::nullopt;
    return Query{*group};
}

std::vector<std::uint8_t> Report::encode() const {
    net::BufWriter w(6);
    w.put_u8(kTypeReport);
    w.put_u8(0);
    w.put_addr(group);
    return w.take();
}

std::optional<Report> Report::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto type = r.get_u8();
    if (!type || *type != kTypeReport) return std::nullopt;
    (void)r.get_u8();
    auto group = r.get_addr();
    if (!group || !r.at_end()) return std::nullopt;
    return Report{*group};
}

std::vector<std::uint8_t> RpMapReport::encode() const {
    net::BufWriter w(6 + rps.size() * 4);
    w.put_u8(kTypeRpMap);
    w.put_u8(static_cast<std::uint8_t>(rps.size()));
    w.put_addr(group);
    for (net::Ipv4Address rp : rps) w.put_addr(rp);
    return w.take();
}

std::optional<RpMapReport> RpMapReport::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto type = r.get_u8();
    if (!type || *type != kTypeRpMap) return std::nullopt;
    auto count = r.get_u8();
    auto group = r.get_addr();
    if (!count || !group) return std::nullopt;
    RpMapReport report;
    report.group = *group;
    for (std::uint8_t i = 0; i < *count; ++i) {
        auto rp = r.get_addr();
        if (!rp) return std::nullopt;
        report.rps.push_back(*rp);
    }
    if (!r.at_end()) return std::nullopt;
    return report;
}

} // namespace pimlib::igmp
