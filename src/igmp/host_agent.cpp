#include "igmp/host_agent.hpp"

#include "topo/network.hpp"

namespace pimlib::igmp {

HostAgent::HostAgent(topo::Host& host, HostConfig config)
    : host_(&host),
      config_(config),
      // Report-spread RNG derives from the network's global seed (legacy
      // per-id stream when no seed is set), so `pimsim seed N` reproduces
      // host report timing end-to-end.
      rng_(host.network().derived_seed(
          static_cast<std::uint32_t>(host.id()),
          topo::Network::kHostAgentStreamTag + static_cast<std::uint64_t>(host.id()))) {
    host_->set_control_handler([this](int ifindex, const net::Packet& packet) {
        on_control(ifindex, packet);
    });
}

void HostAgent::join(net::GroupAddress group) {
    // The join-to-data span: opened when interest is expressed, closed by
    // the data plane when the first packet for the group reaches this host.
    telemetry::Hub& hub = host_->network().telemetry();
    const std::uint64_t span = hub.span_begin(
        telemetry::span::kJoinToData, host_->name() + "|" + group.to_string());
    hub.emit(telemetry::EventType::kIgmpReport, host_->name(), "igmp",
             group.to_string(), "join", span);
    host_->join_group(group);
    if (rp_maps_.contains(group)) send_rp_map(group);
    for (int i = 0; i < config_.unsolicited_report_count; ++i) {
        host_->simulator().schedule(i * config_.unsolicited_report_interval,
                                    [this, group] {
                                        if (host_->is_member(group)) send_report(group);
                                    });
    }
}

void HostAgent::leave(net::GroupAddress group) {
    host_->network().telemetry().span_abort(
        telemetry::span::kJoinToData, host_->name() + "|" + group.to_string());
    host_->leave_group(group);
    auto it = pending_.find(group);
    if (it != pending_.end()) {
        host_->simulator().cancel(it->second);
        pending_.erase(it);
    }
}

void HostAgent::set_rp_mapping(net::GroupAddress group,
                               std::vector<net::Ipv4Address> rps) {
    rp_maps_[group] = std::move(rps);
    send_rp_map(group);
}

void HostAgent::send_report(net::GroupAddress group) {
    net::Packet packet;
    packet.src = host_->address();
    packet.dst = group.address(); // RFC 1112: reports go to the group itself
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = Report{group.address()}.encode();
    host_->network().stats().count_control_message("igmp");
    host_->send(0, net::Frame{std::nullopt, std::move(packet)});
    if (rp_maps_.contains(group)) send_rp_map(group);
}

void HostAgent::send_rp_map(net::GroupAddress group) {
    auto it = rp_maps_.find(group);
    if (it == rp_maps_.end()) return;
    net::Packet packet;
    packet.src = host_->address();
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = RpMapReport{group.address(), it->second}.encode();
    host_->network().stats().count_control_message("igmp");
    host_->send(0, net::Frame{std::nullopt, std::move(packet)});
}

void HostAgent::schedule_response(net::GroupAddress group) {
    if (pending_.contains(group)) return;
    std::uniform_int_distribution<sim::Time> spread(0, config_.query_response_max);
    const sim::Time delay = spread(rng_);
    pending_[group] = host_->simulator().schedule(delay, [this, group] {
        pending_.erase(group);
        if (host_->is_member(group)) send_report(group);
    });
}

void HostAgent::on_control(int ifindex, const net::Packet& packet) {
    (void)ifindex;
    if (packet.proto != net::IpProto::kIgmp || packet.payload.empty()) return;
    switch (packet.payload.front()) {
    case kTypeQuery: {
        auto query = Query::decode(packet.payload);
        if (!query) return;
        if (query->group.is_unspecified()) {
            for (net::GroupAddress group : host_->joined_groups()) {
                schedule_response(group);
            }
        } else if (query->group.is_multicast()) {
            const net::GroupAddress group{query->group};
            if (host_->is_member(group)) schedule_response(group);
        }
        break;
    }
    case kTypeReport: {
        // Another member on the LAN answered: suppress our pending report.
        auto report = Report::decode(packet.payload);
        if (!report || !report->group.is_multicast()) return;
        const net::GroupAddress group{report->group};
        auto it = pending_.find(group);
        if (it != pending_.end()) {
            host_->simulator().cancel(it->second);
            pending_.erase(it);
        }
        break;
    }
    default:
        break;
    }
}

} // namespace pimlib::igmp
