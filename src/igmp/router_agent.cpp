#include "igmp/router_agent.hpp"

#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::igmp {

RouterAgent::RouterAgent(topo::Router& router, RouterConfig config)
    : router_(&router), config_(config), tick_(router.simulator(), [this] { on_tick(); }) {
    auto handler = [this](int ifindex, const net::Packet& packet) {
        on_message(ifindex, packet);
    };
    router_->register_igmp_type(kTypeQuery, handler);
    router_->register_igmp_type(kTypeReport, handler);
    router_->register_igmp_type(kTypeRpMap, handler);
    tick_.start(config_.query_interval);
    router_->simulator().schedule(0, [this] { on_tick(); });
}

void RouterAgent::on_tick() {
    const sim::Time now = router_->simulator().now();

    // Age out memberships.
    for (auto& [ifindex, groups] : membership_) {
        for (auto it = groups.begin(); it != groups.end();) {
            if (now >= it->second) {
                const net::GroupAddress group = it->first;
                it = groups.erase(it);
                for (const auto& cb : callbacks_) cb(ifindex, group, false);
            } else {
                ++it;
            }
        }
    }

    // Send general queries where we are (still) the querier.
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        auto it = other_querier_until_.find(iface.ifindex);
        if (it != other_querier_until_.end() && now < it->second) continue;
        send_query(iface.ifindex);
    }
}

void RouterAgent::reboot() {
    membership_.clear();
    other_querier_until_.clear();
    tick_.start(config_.query_interval); // restart phase from the reboot instant
    // Query right away (as a fresh querier would) so host reports repopulate
    // the membership database within one report round-trip.
    router_->simulator().schedule(0, [this] { on_tick(); });
}

void RouterAgent::send_query(int ifindex) {
    net::Packet packet;
    packet.src = router_->interface(ifindex).address;
    packet.dst = net::kAllSystems;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = Query{net::Ipv4Address{}}.encode();
    router_->network().stats().count_control_message("igmp");
    router_->send(ifindex, net::Frame{std::nullopt, std::move(packet)});
}

void RouterAgent::note_member(int ifindex, net::GroupAddress group) {
    auto& groups = membership_[ifindex];
    const bool is_new = !groups.contains(group);
    groups[group] = router_->simulator().now() + config_.membership_timeout;
    if (is_new) {
        for (const auto& cb : callbacks_) cb(ifindex, group, true);
    }
}

void RouterAgent::on_message(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.igmp");
    if (packet.payload.empty()) return;
    switch (packet.payload.front()) {
    case kTypeReport: {
        auto report = Report::decode(packet.payload);
        if (!report || !report->group.is_multicast()) return;
        note_member(ifindex, net::GroupAddress{report->group});
        break;
    }
    case kTypeQuery: {
        // Querier election: a query from a lower address silences us.
        if (ifindex >= 0 && packet.src < router_->interface(ifindex).address) {
            other_querier_until_[ifindex] =
                router_->simulator().now() + config_.other_querier_timeout;
        }
        break;
    }
    case kTypeRpMap: {
        auto map = RpMapReport::decode(packet.payload);
        if (!map || !map->group.is_multicast()) return;
        if (rp_map_cb_) rp_map_cb_(net::GroupAddress{map->group}, map->rps);
        break;
    }
    default:
        break;
    }
}

bool RouterAgent::has_members(int ifindex, net::GroupAddress group) const {
    auto it = membership_.find(ifindex);
    return it != membership_.end() && it->second.contains(group);
}

std::set<net::GroupAddress> RouterAgent::groups_on(int ifindex) const {
    std::set<net::GroupAddress> out;
    auto it = membership_.find(ifindex);
    if (it == membership_.end()) return out;
    for (const auto& [group, expiry] : it->second) out.insert(group);
    return out;
}

std::vector<int> RouterAgent::member_interfaces(net::GroupAddress group) const {
    std::vector<int> out;
    for (const auto& [ifindex, groups] : membership_) {
        if (groups.contains(group)) out.push_back(ifindex);
    }
    return out;
}

} // namespace pimlib::igmp
