// IGMP router-side agent: periodic general queries with querier election
// (lowest interface address on a segment queries), a per-interface group
// membership database with soft-state expiry, and callbacks so multicast
// routing protocols can react to members appearing and disappearing.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "igmp/messages.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::igmp {

struct RouterConfig {
    sim::Time query_interval = 10 * sim::kSecond;
    sim::Time membership_timeout = 25 * sim::kSecond; // 2.5 × query interval
    sim::Time other_querier_timeout = 25 * sim::kSecond;
};

class RouterAgent {
public:
    explicit RouterAgent(topo::Router& router, RouterConfig config = {});

    RouterAgent(const RouterAgent&) = delete;
    RouterAgent& operator=(const RouterAgent&) = delete;

    /// Fired when the first member of `group` appears on `ifindex`
    /// (member_present=true) or the last one ages out (false).
    using MembershipCallback =
        std::function<void(int ifindex, net::GroupAddress group, bool member_present)>;
    void subscribe(MembershipCallback callback) {
        callbacks_.push_back(std::move(callback));
    }

    /// Fired when a host announces a group→RP mapping (paper §3.1).
    using RpMapCallback =
        std::function<void(net::GroupAddress group, const std::vector<net::Ipv4Address>& rps)>;
    void set_rp_map_callback(RpMapCallback callback) { rp_map_cb_ = std::move(callback); }

    [[nodiscard]] bool has_members(int ifindex, net::GroupAddress group) const;
    [[nodiscard]] std::set<net::GroupAddress> groups_on(int ifindex) const;
    /// All interfaces with at least one member of `group`.
    [[nodiscard]] std::vector<int> member_interfaces(net::GroupAddress group) const;

    [[nodiscard]] topo::Router& router() { return *router_; }
    [[nodiscard]] const topo::Router& router() const { return *router_; }
    [[nodiscard]] const RouterConfig& config() const { return config_; }

    /// Simulates a crash+restart: forgets the membership database and
    /// querier-election state, then queries immediately so hosts re-report.
    /// No member_present=false callbacks fire — the crashed state is simply
    /// gone, as after a real reboot.
    void reboot();

private:
    void on_message(int ifindex, const net::Packet& packet);
    void on_tick();
    void send_query(int ifindex);
    void note_member(int ifindex, net::GroupAddress group);

    topo::Router* router_;
    RouterConfig config_;
    // membership_[ifindex][group] = expiry time
    std::map<int, std::map<net::GroupAddress, sim::Time>> membership_;
    // Suppress querying on interfaces where a lower-addressed querier lives.
    std::map<int, sim::Time> other_querier_until_;
    std::vector<MembershipCallback> callbacks_;
    RpMapCallback rp_map_cb_;
    sim::PeriodicTimer tick_;
};

} // namespace pimlib::igmp
