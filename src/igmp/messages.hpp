// IGMP wire messages (RFC 1112 style) plus the "new IGMP message" the paper
// proposes for hosts to distribute group→RP mappings to their local routers
// (§3.1). The first payload byte is the IGMP type code; PIM and DVMRP share
// IP protocol 2 with IGMP and are demultiplexed on this byte, matching the
// 1994 encapsulation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/buffer.hpp"
#include "net/ipv4.hpp"

namespace pimlib::igmp {

// IGMP type codes.
inline constexpr std::uint8_t kTypeQuery = 0x11;
inline constexpr std::uint8_t kTypeReport = 0x12;
inline constexpr std::uint8_t kTypeDvmrp = 0x13;  // DVMRP control rides IGMP
inline constexpr std::uint8_t kTypePim = 0x14;    // PIM v1 control rides IGMP
inline constexpr std::uint8_t kTypeRpMap = 0x15;  // paper's host→router RP info

/// Membership query. group unspecified (0.0.0.0) means a general query.
struct Query {
    net::Ipv4Address group;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<Query> decode(std::span<const std::uint8_t> bytes);
};

/// Membership report for one group.
struct Report {
    net::Ipv4Address group;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<Report> decode(std::span<const std::uint8_t> bytes);
};

/// Host-supplied group→RP mapping (ordered RP list; first is primary).
struct RpMapReport {
    net::Ipv4Address group;
    std::vector<net::Ipv4Address> rps;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<RpMapReport> decode(std::span<const std::uint8_t> bytes);
};

} // namespace pimlib::igmp
