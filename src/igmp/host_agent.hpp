// IGMP host-side agent: answers queries with reports (after a random spread
// delay, suppressed if another member answers first, per RFC 1112), sends
// unsolicited reports on join, and can announce group→RP mappings to the
// local routers (the paper's proposed host message, §3.1).
#pragma once

#include <map>
#include <random>
#include <set>
#include <vector>

#include "igmp/messages.hpp"
#include "sim/simulator.hpp"
#include "topo/host.hpp"

namespace pimlib::igmp {

struct HostConfig {
    sim::Time unsolicited_report_interval = 100 * sim::kMillisecond;
    int unsolicited_report_count = 2; // robustness against loss
    sim::Time query_response_max = 1 * sim::kSecond;
};

class HostAgent {
public:
    explicit HostAgent(topo::Host& host, HostConfig config = {});

    HostAgent(const HostAgent&) = delete;
    HostAgent& operator=(const HostAgent&) = delete;

    /// Joins `group`: updates the host's data-plane filter and sends
    /// unsolicited membership reports.
    void join(net::GroupAddress group);

    /// Leaves: stop answering queries; routers age the membership out
    /// (IGMPv1 has no leave message).
    void leave(net::GroupAddress group);

    /// Associates an RP list with a group; announced to local routers right
    /// away and together with future reports for the group.
    void set_rp_mapping(net::GroupAddress group, std::vector<net::Ipv4Address> rps);

    [[nodiscard]] topo::Host& host() { return *host_; }

private:
    void on_control(int ifindex, const net::Packet& packet);
    void send_report(net::GroupAddress group);
    void send_rp_map(net::GroupAddress group);
    void schedule_response(net::GroupAddress group);

    topo::Host* host_;
    HostConfig config_;
    std::mt19937 rng_;
    // Pending scheduled responses per group (cancel on overheard report).
    std::map<net::GroupAddress, sim::EventId> pending_;
    std::map<net::GroupAddress, std::vector<net::Ipv4Address>> rp_maps_;
};

} // namespace pimlib::igmp
