#include "stats/counters.hpp"

#include <algorithm>
#include <cmath>

namespace pimlib::stats {

Summary summarize(const std::vector<double>& samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    double sum = 0;
    s.min = samples.front();
    s.max = samples.front();
    for (double v : samples) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(samples.size());
    double var = 0;
    for (double v : samples) var += (v - s.mean) * (v - s.mean);
    s.stddev = samples.size() > 1
                   ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                   : 0.0;
    return s;
}

std::uint64_t NetworkStats::data_packets_on(int segment_id) const {
    auto it = data_packets_by_segment_.find(segment_id);
    return it == data_packets_by_segment_.end() ? 0 : it->second;
}

std::uint64_t NetworkStats::total_data_packets() const {
    std::uint64_t total = 0;
    for (const auto& [seg, n] : data_packets_by_segment_) total += n;
    return total;
}

std::size_t NetworkStats::flows_on(int segment_id) const {
    auto it = flows_by_segment_.find(segment_id);
    return it == flows_by_segment_.end() ? 0 : it->second.size();
}

std::size_t NetworkStats::max_flows_on_any_segment() const {
    std::size_t best = 0;
    for (const auto& [seg, flows] : flows_by_segment_) best = std::max(best, flows.size());
    return best;
}

std::uint64_t NetworkStats::control_messages(const std::string& protocol) const {
    auto it = control_messages_.find(protocol);
    return it == control_messages_.end() ? 0 : it->second;
}

std::uint64_t NetworkStats::total_control_messages() const {
    std::uint64_t total = 0;
    for (const auto& [proto, n] : control_messages_) total += n;
    return total;
}

void NetworkStats::reset_data_counters() {
    data_packets_by_segment_.clear();
    flows_by_segment_.clear();
    data_delivered_ = 0;
    data_dropped_iif_ = 0;
    data_dropped_ttl_ = 0;
    data_dropped_no_route_ = 0;
}

} // namespace pimlib::stats
