#include "stats/counters.hpp"

#include <algorithm>
#include <cmath>

namespace pimlib::stats {

Summary summarize(const std::vector<double>& samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    double sum = 0;
    s.min = samples.front();
    s.max = samples.front();
    for (double v : samples) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(samples.size());
    double var = 0;
    for (double v : samples) var += (v - s.mean) * (v - s.mean);
    s.stddev = samples.size() > 1
                   ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                   : 0.0;
    return s;
}

NetworkStats::NetworkStats(telemetry::Registry& registry)
    : registry_(&registry),
      data_delivered_(&registry.counter("pimlib_data_delivered_total", {},
                                        "Data packets delivered to member hosts")),
      dropped_iif_(&registry.counter("pimlib_data_dropped_total",
                                     {{"reason", "iif"}},
                                     "Data packets dropped, by reason")),
      dropped_ttl_(&registry.counter("pimlib_data_dropped_total",
                                     {{"reason", "ttl"}})),
      dropped_no_route_(&registry.counter("pimlib_data_dropped_total",
                                          {{"reason", "no_route"}})),
      dropped_loss_(&registry.counter("pimlib_data_dropped_total",
                                      {{"reason", "loss"}})) {}

telemetry::Counter& NetworkStats::segment_data(int segment_id) {
    auto it = data_by_segment_.find(segment_id);
    if (it == data_by_segment_.end()) {
        it = data_by_segment_
                 .emplace(segment_id,
                          &registry_->counter(
                              "pimlib_data_segment_packets_total",
                              {{"segment", std::to_string(segment_id)}},
                              "Data packets carried, per segment"))
                 .first;
    }
    return *it->second;
}

telemetry::Counter& NetworkStats::segment_control(int segment_id) {
    auto it = control_by_segment_.find(segment_id);
    if (it == control_by_segment_.end()) {
        it = control_by_segment_
                 .emplace(segment_id,
                          &registry_->counter(
                              "pimlib_control_segment_messages_total",
                              {{"segment", std::to_string(segment_id)}},
                              "Control messages carried, per segment"))
                 .first;
    }
    return *it->second;
}

void NetworkStats::count_control_message(const std::string& protocol) {
    auto it = control_by_protocol_.find(protocol);
    if (it == control_by_protocol_.end()) {
        it = control_by_protocol_
                 .emplace(protocol, &registry_->counter(
                                        "pimlib_control_messages_total",
                                        {{"protocol", protocol}},
                                        "Control messages processed, per protocol"))
                 .first;
    }
    it->second->inc();
}

void NetworkStats::note_flow(int segment_id, net::Ipv4Address source,
                             net::GroupAddress group) {
    auto& flows = flows_by_segment_[segment_id];
    flows.insert({source.to_uint(), group.address().to_uint()});
    registry_
        ->gauge("pimlib_data_segment_flows",
                {{"segment", std::to_string(segment_id)}},
                "Distinct (source, group) flows seen on a segment this phase")
        .set(static_cast<double>(flows.size()));
}

std::uint64_t NetworkStats::data_packets_on(int segment_id) const {
    auto it = data_by_segment_.find(segment_id);
    return it == data_by_segment_.end() ? 0 : it->second->value();
}

std::uint64_t NetworkStats::total_data_packets() const {
    std::uint64_t total = 0;
    for (const auto& [seg, counter] : data_by_segment_) total += counter->value();
    return total;
}

std::size_t NetworkStats::flows_on(int segment_id) const {
    auto it = flows_by_segment_.find(segment_id);
    return it == flows_by_segment_.end() ? 0 : it->second.size();
}

std::size_t NetworkStats::max_flows_on_any_segment() const {
    std::size_t best = 0;
    for (const auto& [seg, flows] : flows_by_segment_) best = std::max(best, flows.size());
    return best;
}

std::size_t NetworkStats::segments_carrying_data() const {
    std::size_t n = 0;
    for (const auto& [seg, counter] : data_by_segment_) {
        if (counter->value() > 0) ++n;
    }
    return n;
}

std::uint64_t NetworkStats::control_messages(const std::string& protocol) const {
    auto it = control_by_protocol_.find(protocol);
    return it == control_by_protocol_.end() ? 0 : it->second->value();
}

std::uint64_t NetworkStats::total_control_messages() const {
    std::uint64_t total = 0;
    for (const auto& [proto, counter] : control_by_protocol_) {
        total += counter->value();
    }
    return total;
}

void NetworkStats::reset_data_counters() {
    data_delivered_->begin_epoch();
    dropped_iif_->begin_epoch();
    dropped_ttl_->begin_epoch();
    dropped_no_route_->begin_epoch();
    dropped_loss_->begin_epoch();
    for (auto& [seg, counter] : data_by_segment_) counter->begin_epoch();
    for (auto& [seg, counter] : control_by_segment_) counter->begin_epoch();
    for (auto& [seg, flows] : flows_by_segment_) {
        flows.clear();
        registry_
            ->gauge("pimlib_data_segment_flows", {{"segment", std::to_string(seg)}})
            .set(0);
    }
    // Per-protocol control totals intentionally survive (class comment).
}

} // namespace pimlib::stats
