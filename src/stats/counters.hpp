// Measurement plumbing shared by the whole simulation: per-link packet and
// flow accounting, control-message accounting per router, and simple
// summary statistics. The paper's efficiency metric is "state, control
// message processing, and data packet processing required across the entire
// network" (§1) — these counters make that measurable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace pimlib::stats {

/// Mean / min / max / stddev over a sample set.
struct Summary {
    double mean = 0;
    double stddev = 0;
    double min = 0;
    double max = 0;
    std::size_t count = 0;
};

Summary summarize(const std::vector<double>& samples);

/// Global counters for one simulation scenario. Owned by topo::Network;
/// every segment and router reports into it.
class NetworkStats {
public:
    // ---- data plane ----
    void count_data_packet(int segment_id) { ++data_packets_by_segment_[segment_id]; }
    void count_data_delivered() { ++data_delivered_; }
    void count_data_dropped_iif() { ++data_dropped_iif_; }
    void count_data_dropped_ttl() { ++data_dropped_ttl_; }
    void count_data_dropped_no_route() { ++data_dropped_no_route_; }
    /// A frame (data or control) destroyed by injected segment loss.
    void count_dropped_loss() { ++dropped_loss_; }

    /// Records that a (source, group) flow crossed a segment, for
    /// traffic-concentration measurements (Fig. 2(b) style).
    void note_flow(int segment_id, net::Ipv4Address source, net::GroupAddress group) {
        flows_by_segment_[segment_id].insert({source.to_uint(), group.address().to_uint()});
    }

    // ---- control plane ----
    void count_control_message(const std::string& protocol) { ++control_messages_[protocol]; }
    void count_control_on_segment(int segment_id) { ++control_by_segment_[segment_id]; }

    // ---- queries ----
    [[nodiscard]] std::uint64_t data_packets_on(int segment_id) const;
    [[nodiscard]] std::uint64_t total_data_packets() const;
    [[nodiscard]] std::uint64_t data_delivered() const { return data_delivered_; }
    [[nodiscard]] std::uint64_t data_dropped_iif() const { return data_dropped_iif_; }
    [[nodiscard]] std::uint64_t data_dropped_ttl() const { return data_dropped_ttl_; }
    [[nodiscard]] std::uint64_t data_dropped_no_route() const { return data_dropped_no_route_; }
    [[nodiscard]] std::uint64_t dropped_loss() const { return dropped_loss_; }
    [[nodiscard]] std::size_t flows_on(int segment_id) const;
    [[nodiscard]] std::size_t max_flows_on_any_segment() const;
    [[nodiscard]] std::size_t segments_carrying_data() const { return data_packets_by_segment_.size(); }
    [[nodiscard]] std::uint64_t control_messages(const std::string& protocol) const;
    [[nodiscard]] std::uint64_t total_control_messages() const;

    void reset_data_counters();

private:
    std::map<int, std::uint64_t> data_packets_by_segment_;
    std::map<int, std::set<std::pair<std::uint32_t, std::uint32_t>>> flows_by_segment_;
    std::map<int, std::uint64_t> control_by_segment_;
    std::map<std::string, std::uint64_t> control_messages_;
    std::uint64_t data_delivered_ = 0;
    std::uint64_t data_dropped_iif_ = 0;
    std::uint64_t data_dropped_ttl_ = 0;
    std::uint64_t data_dropped_no_route_ = 0;
    std::uint64_t dropped_loss_ = 0;
};

} // namespace pimlib::stats
