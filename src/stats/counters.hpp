// Measurement plumbing shared by the whole simulation: per-link packet and
// flow accounting, control-message accounting per router, and simple
// summary statistics. The paper's efficiency metric is "state, control
// message processing, and data packet processing required across the entire
// network" (§1) — these counters make that measurable.
//
// NetworkStats is now a facade over telemetry::Registry: every count lands
// in a named, labeled instrument (pimlib_data_*, pimlib_control_*), so the
// same numbers the legacy query API returns also flow out of the JSON /
// Prometheus / CSV exporters. The facade keeps resolved Counter* handles,
// so the per-packet cost is an indirect increment, same as before.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "telemetry/metrics.hpp"

namespace pimlib::stats {

/// Mean / min / max / stddev over a sample set.
struct Summary {
    double mean = 0;
    double stddev = 0;
    double min = 0;
    double max = 0;
    std::size_t count = 0;
};

Summary summarize(const std::vector<double>& samples);

/// Global counters for one simulation scenario. Owned by topo::Network;
/// every segment and router reports into it.
///
/// Reset semantics (multi-phase scenarios: warm up, reset, measure): the
/// query API reads since-the-last-reset values for everything *except*
/// per-protocol control totals, which stay cumulative — control traffic is
/// a whole-run protocol cost, not a phase artifact. Lifetime values remain
/// available through the registry (Counter::lifetime()).
class NetworkStats {
public:
    explicit NetworkStats(telemetry::Registry& registry);

    // ---- data plane ----
    void count_data_packet(int segment_id) { segment_data(segment_id).inc(); }
    void count_data_delivered() { data_delivered_->inc(); }
    void count_data_dropped_iif() { dropped_iif_->inc(); }
    void count_data_dropped_ttl() { dropped_ttl_->inc(); }
    void count_data_dropped_no_route() { dropped_no_route_->inc(); }
    /// A frame (data or control) destroyed by injected segment loss.
    void count_dropped_loss() { dropped_loss_->inc(); }

    /// Records that a (source, group) flow crossed a segment, for
    /// traffic-concentration measurements (Fig. 2(b) style).
    void note_flow(int segment_id, net::Ipv4Address source, net::GroupAddress group);

    // ---- control plane ----
    void count_control_message(const std::string& protocol);
    void count_control_on_segment(int segment_id) { segment_control(segment_id).inc(); }

    // ---- queries ----
    [[nodiscard]] std::uint64_t data_packets_on(int segment_id) const;
    [[nodiscard]] std::uint64_t total_data_packets() const;
    [[nodiscard]] std::uint64_t data_delivered() const { return data_delivered_->value(); }
    [[nodiscard]] std::uint64_t data_dropped_iif() const { return dropped_iif_->value(); }
    [[nodiscard]] std::uint64_t data_dropped_ttl() const { return dropped_ttl_->value(); }
    [[nodiscard]] std::uint64_t data_dropped_no_route() const { return dropped_no_route_->value(); }
    [[nodiscard]] std::uint64_t dropped_loss() const { return dropped_loss_->value(); }
    [[nodiscard]] std::size_t flows_on(int segment_id) const;
    [[nodiscard]] std::size_t max_flows_on_any_segment() const;
    [[nodiscard]] std::size_t segments_carrying_data() const;
    [[nodiscard]] std::uint64_t control_messages(const std::string& protocol) const;
    [[nodiscard]] std::uint64_t total_control_messages() const;

    /// Starts a new measurement phase: zeroes (via counter epochs) all data
    /// counters, loss drops, per-segment control counts, and flow sets.
    /// Historically per-segment control counters and loss drops leaked
    /// across resets; they no longer do. Per-protocol control totals are
    /// deliberately cumulative (see class comment).
    void reset_data_counters();

private:
    telemetry::Counter& segment_data(int segment_id);
    telemetry::Counter& segment_control(int segment_id);

    telemetry::Registry* registry_;
    telemetry::Counter* data_delivered_;
    telemetry::Counter* dropped_iif_;
    telemetry::Counter* dropped_ttl_;
    telemetry::Counter* dropped_no_route_;
    telemetry::Counter* dropped_loss_;
    std::map<int, telemetry::Counter*> data_by_segment_;
    std::map<int, telemetry::Counter*> control_by_segment_;
    std::map<std::string, telemetry::Counter*> control_by_protocol_;
    std::map<int, std::set<std::pair<std::uint32_t, std::uint32_t>>> flows_by_segment_;
};

} // namespace pimlib::stats
