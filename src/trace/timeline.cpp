#include "trace/timeline.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "telemetry/events.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/profiler/profiler.hpp"

namespace pimlib::trace {

namespace {

using telemetry::Event;
using telemetry::EventType;
using telemetry::json_escape;

/// Comma-separated accumulation of trace-event objects.
struct Emitter {
    std::string out;
    bool first = true;

    void add(const std::string& obj) {
        out += first ? "  " : ",\n  ";
        first = false;
        out += obj;
    }
};

std::string fmt(const char* format, ...) {
    char buf[768];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

/// Which flow queue a control event participates in, if any. Queues are
/// FIFO per (kind, group): a hop-by-hop join travels DR → RP as a chain of
/// join-sent/join-received pairs, and FIFO order matches because the sim
/// delivers same-link messages in send order.
struct FlowRole {
    const char* kind = nullptr; // queue family ("join", "prune", ...)
    bool sender = false;        // true: enqueue; false: dequeue + arrow
};

FlowRole flow_role(EventType type) {
    switch (type) {
    case EventType::kJoinSent: return {"join", true};
    case EventType::kJoinReceived: return {"join", false};
    case EventType::kPruneSent: return {"prune", true};
    case EventType::kPruneReceived: return {"prune", false};
    case EventType::kRegisterSent: return {"register", true};
    case EventType::kRegisterReceived: return {"register", false};
    case EventType::kIgmpReport: return {"igmp", true};
    default: return {};
    }
}

struct PendingFlow {
    sim::Time ts = 0;
    int tid = 0;
};

} // namespace

std::string chrome_timeline_json(const telemetry::Hub& hub,
                                 const provenance::Recorder* recorder,
                                 TimelineConfig config) {
    const auto& events = hub.events().events();
    std::vector<provenance::HopRecord> hops;
    if (recorder != nullptr && config.include_provenance) {
        hops = recorder->all_records();
    }

    // Track assignment: one tid per node name, alphabetical so the Perfetto
    // track order is stable across runs.
    std::set<std::string> names;
    for (const Event& e : events) names.insert(e.node);
    for (const provenance::HopRecord& h : hops) {
        names.insert(recorder->node_name(h.node));
    }
    std::map<std::string, int> tids;
    for (const std::string& n : names) {
        const int tid = static_cast<int>(tids.size()) + 1;
        tids.emplace(n, tid);
    }

    Emitter em;

    // Metadata: process + per-node thread names.
    em.add(fmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"args\":{\"name\":\"nodes (control + data plane)\"}}"));
    em.add(fmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
               "\"args\":{\"name\":\"causal transactions\"}}"));
    for (const auto& [name, tid] : tids) {
        em.add(fmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                   "\"args\":{\"name\":\"%s\"}}",
                   tid, json_escape(name).c_str()));
    }

    const auto dur = static_cast<long long>(config.slice_duration);
    std::uint64_t next_flow = 1;
    std::map<std::pair<std::string, std::string>, std::deque<PendingFlow>> pending;

    // Control-plane decisions: one slice per event, flow arrows pairing
    // sends with receives (and IGMP reports with the joins they trigger).
    for (const Event& e : events) {
        const int tid = tids.at(e.node);
        const auto ts = static_cast<long long>(e.at);
        std::string args = fmt("\"protocol\":\"%s\"", json_escape(e.protocol).c_str());
        if (!e.group.empty()) {
            args += fmt(",\"group\":\"%s\"", json_escape(e.group).c_str());
        }
        if (!e.detail.empty()) {
            args += fmt(",\"detail\":\"%s\"", json_escape(e.detail).c_str());
        }
        if (e.span != 0) {
            args += fmt(",\"span\":%llu", static_cast<unsigned long long>(e.span));
        }
        em.add(fmt("{\"name\":\"%s\",\"cat\":\"control\",\"ph\":\"X\",\"ts\":%lld,"
                   "\"dur\":%lld,\"pid\":1,\"tid\":%d,\"args\":{%s}}",
                   telemetry::to_string(e.type), ts, dur, tid, args.c_str()));

        const FlowRole role = flow_role(e.type);
        if (role.kind == nullptr) continue;
        if (role.sender) {
            pending[{role.kind, e.group}].push_back({e.at, tid});
        } else {
            auto it = pending.find({role.kind, e.group});
            if (it != pending.end() && !it->second.empty()) {
                const PendingFlow from = it->second.front();
                it->second.pop_front();
                const std::uint64_t id = next_flow++;
                em.add(fmt("{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"s\","
                           "\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                           role.kind, static_cast<long long>(from.ts), from.tid,
                           static_cast<unsigned long long>(id)));
                em.add(fmt("{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
                           "\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                           role.kind, ts, tid, static_cast<unsigned long long>(id)));
            }
        }
        // An IGMP report causes the DR's next triggered join for the group:
        // the report is the sender, join-sent the receiver end of the arrow.
        if (e.type == EventType::kJoinSent) {
            auto igmp = pending.find({"igmp", e.group});
            if (igmp != pending.end() && !igmp->second.empty()) {
                const PendingFlow from = igmp->second.front();
                igmp->second.pop_front();
                const std::uint64_t id = next_flow++;
                em.add(fmt("{\"name\":\"igmp-to-join\",\"cat\":\"flow\",\"ph\":\"s\","
                           "\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                           static_cast<long long>(from.ts), from.tid,
                           static_cast<unsigned long long>(id)));
                em.add(fmt("{\"name\":\"igmp-to-join\",\"cat\":\"flow\",\"ph\":\"f\","
                           "\"bp\":\"e\",\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                           ts, tid, static_cast<unsigned long long>(id)));
            }
        }
    }

    // Completed causal spans (join-to-data, spt-switch, rp-failover) as
    // async bars on the transactions process, one tid per span kind.
    std::map<std::string, int> span_tids;
    for (const auto& c : hub.spans().completed()) {
        auto [it, inserted] =
            span_tids.emplace(c.kind, static_cast<int>(span_tids.size()) + 1);
        const int tid = it->second;
        if (inserted) {
            em.add(fmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":%d,"
                       "\"args\":{\"name\":\"%s\"}}",
                       tid, json_escape(c.kind).c_str()));
        }
        em.add(fmt("{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"b\",\"ts\":%lld,"
                   "\"pid\":2,\"tid\":%d,\"id\":%llu,\"args\":{\"key\":\"%s\"}}",
                   json_escape(c.kind).c_str(), static_cast<long long>(c.begin), tid,
                   static_cast<unsigned long long>(c.id), json_escape(c.key).c_str()));
        em.add(fmt("{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"e\",\"ts\":%lld,"
                   "\"pid\":2,\"tid\":%d,\"id\":%llu}",
                   json_escape(c.kind).c_str(), static_cast<long long>(c.end), tid,
                   static_cast<unsigned long long>(c.id)));
    }

    // Data-plane hop records: one slice per forwarding decision, flow
    // arrows chaining consecutive hops of the same packet id — the visual
    // path a packet took down the tree (or the drop that ended it).
    std::map<std::uint64_t, PendingFlow> last_hop;
    for (const provenance::HopRecord& h : hops) {
        const int tid = tids.at(recorder->node_name(h.node));
        const auto ts = static_cast<long long>(h.at);
        const bool dropped = h.drop != provenance::DropReason::kNone;
        const std::string name =
            dropped ? fmt("drop %s", provenance::drop_reason_label(h.drop))
                    : fmt("fwd %s", provenance::entry_kind_label(h.kind));
        em.add(fmt("{\"name\":\"%s\",\"cat\":\"data\",\"ph\":\"X\",\"ts\":%lld,"
                   "\"dur\":%lld,\"pid\":1,\"tid\":%d,\"args\":{"
                   "\"pid\":\"%016" PRIx64 "\",\"src\":\"%s\",\"group\":\"%s\","
                   "\"seq\":%" PRIu64 ",\"iif\":%d,\"ttl\":%u,\"oifs\":%u}}",
                   json_escape(name).c_str(), ts, dur, tid, h.pid,
                   h.src.to_string().c_str(), h.group.to_string().c_str(), h.seq,
                   static_cast<int>(h.iif), static_cast<unsigned>(h.ttl),
                   static_cast<unsigned>(h.oif_count)));
        const auto prev = last_hop.find(h.pid);
        if (prev != last_hop.end()) {
            const std::uint64_t id = next_flow++;
            em.add(fmt("{\"name\":\"pkt\",\"cat\":\"dataflow\",\"ph\":\"s\","
                       "\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                       static_cast<long long>(prev->second.ts), prev->second.tid,
                       static_cast<unsigned long long>(id)));
            em.add(fmt("{\"name\":\"pkt\",\"cat\":\"dataflow\",\"ph\":\"f\","
                       "\"bp\":\"e\",\"ts\":%lld,\"pid\":1,\"tid\":%d,\"id\":%llu}",
                       ts, tid, static_cast<unsigned long long>(id)));
        }
        last_hop[h.pid] = {h.at, tid};
    }

    // CPU profiler zones (pid 3, tid per host thread). The profiler clock
    // is host-monotonic nanoseconds — a different timebase from sim-time —
    // so these slices live on their own process, rebased to the earliest
    // retained record and scaled to Chrome's microsecond `ts`. Nesting is
    // well-formed per thread because the records come from a stack.
    std::vector<prof::TraceSlice> slices;
    if (config.include_profile) slices = prof::trace_slices();
    if (!slices.empty()) {
        em.add(fmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,"
                   "\"args\":{\"name\":\"cpu profile (host time)\"}}"));
        std::set<std::uint32_t> prof_tids;
        std::int64_t epoch = slices.front().t0_ns;
        for (const prof::TraceSlice& s : slices) {
            epoch = std::min(epoch, s.t0_ns);
            prof_tids.insert(s.thread);
        }
        for (const std::uint32_t t : prof_tids) {
            em.add(fmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":%u,"
                       "\"args\":{\"name\":\"sim thread %u\"}}",
                       t + 1, t));
        }
        for (const prof::TraceSlice& s : slices) {
            const double ts_us = static_cast<double>(s.t0_ns - epoch) / 1e3;
            const double dur_us = static_cast<double>(s.t1_ns - s.t0_ns) / 1e3;
            em.add(fmt("{\"name\":\"%s\",\"cat\":\"cpu\",\"ph\":\"X\",\"ts\":%.3f,"
                       "\"dur\":%.3f,\"pid\":3,\"tid\":%u,\"args\":{"
                       "\"path\":\"%s\",\"sim_at\":%lld}}",
                       json_escape(s.leaf).c_str(), ts_us, dur_us, s.thread + 1,
                       json_escape(s.path).c_str(),
                       static_cast<long long>(s.sim_at)));
        }
    }

    return "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n" + em.out +
           "\n]\n}\n";
}

} // namespace pimlib::trace
