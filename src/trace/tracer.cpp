#include "trace/tracer.hpp"

#include <cstdio>

#include "cbt/cbt.hpp"
#include "dvmrp/dvmrp.hpp"
#include "igmp/messages.hpp"
#include "mospf/mospf.hpp"
#include "pim/messages.hpp"
#include "unicast/distance_vector.hpp"
#include "unicast/link_state.hpp"

namespace pimlib::trace {

namespace {

std::string flags_of(const pim::EntryFlags& flags) {
    std::string out;
    if (flags.wc_bit) out += "WC";
    if (flags.rp_bit) out += out.empty() ? "RP" : "|RP";
    return out.empty() ? "-" : out;
}

std::string entry_list(const std::vector<pim::AddressEntry>& entries) {
    std::string out = "[";
    bool first = true;
    for (const auto& e : entries) {
        if (!first) out += " ";
        out += e.address.to_string() + "(" + flags_of(e.flags) + ")";
        first = false;
    }
    return out + "]";
}

std::string describe_pim(const net::Packet& packet) {
    auto code = pim::peek_code(packet.payload);
    if (!code) return "PIM (malformed)";
    switch (*code) {
    case pim::Code::kQuery:
        return "PIM Query";
    case pim::Code::kRegister: {
        auto msg = pim::Register::decode(packet.payload);
        if (!msg) return "PIM Register (malformed)";
        return "PIM Register grp=" + msg->group.to_string() +
               " src=" + msg->inner_src.to_string() +
               " seq=" + std::to_string(msg->inner_seq);
    }
    case pim::Code::kJoinPrune: {
        auto msg = pim::JoinPrune::decode(packet.payload);
        if (!msg) return "PIM Join/Prune (malformed)";
        return "PIM Join/Prune grp=" + msg->group.to_string() +
               " to=" + msg->upstream_neighbor.to_string() +
               " join=" + entry_list(msg->joins) + " prune=" + entry_list(msg->prunes);
    }
    case pim::Code::kRpReachability: {
        auto msg = pim::RpReachability::decode(packet.payload);
        if (!msg) return "PIM RP-Reachability (malformed)";
        return "PIM RP-Reachability grp=" + msg->group.to_string() +
               " rp=" + msg->rp.to_string();
    }
    case pim::Code::kAssert: {
        auto msg = pim::Assert::decode(packet.payload);
        if (!msg) return "PIM Assert (malformed)";
        return "PIM Assert grp=" + msg->group.to_string() +
               " src=" + msg->source.to_string() +
               (msg->wc_bit ? " WC" : "") +
               " metric=" + std::to_string(msg->metric);
    }
    case pim::Code::kBootstrap: {
        auto msg = pim::Bootstrap::decode(packet.payload);
        if (!msg) return "PIM Bootstrap (malformed)";
        std::string out = "PIM Bootstrap bsr=" + msg->bsr.to_string() +
                          " pri=" + std::to_string(msg->bsr_priority) +
                          " seq=" + std::to_string(msg->seq) + " rps=[";
        bool first = true;
        for (const auto& e : msg->rps) {
            if (!first) out += " ";
            out += e.range.to_string() + "->" + e.rp.to_string() + "(" +
                   std::to_string(e.priority) + ")";
            first = false;
        }
        return out + "]";
    }
    case pim::Code::kCandidateRpAdvertisement: {
        auto msg = pim::CandidateRpAdvertisement::decode(packet.payload);
        if (!msg) return "PIM C-RP-Adv (malformed)";
        std::string out = "PIM C-RP-Adv rp=" + msg->rp.to_string() +
                          " pri=" + std::to_string(msg->priority) + " ranges=[";
        for (std::size_t i = 0; i < msg->ranges.size(); ++i) {
            if (i > 0) out += " ";
            out += msg->ranges[i].to_string();
        }
        return out + "]";
    }
    case pim::Code::kJoinPruneBundle: {
        auto msg = pim::JoinPruneBundle::decode(packet.payload);
        if (!msg) return "PIM Join/Prune bundle (malformed)";
        std::string out = "PIM Join/Prune bundle to=" +
                          msg->upstream_neighbor.to_string() +
                          " groups=" + std::to_string(msg->groups.size());
        for (const auto& rec : msg->groups) {
            out += " [grp=" + rec.group.to_string() +
                   " join=" + entry_list(rec.joins) +
                   " prune=" + entry_list(rec.prunes) + "]";
        }
        return out;
    }
    }
    return "PIM (unknown)";
}

std::string describe_igmp_family(const net::Packet& packet) {
    if (packet.payload.empty()) return "IGMP (empty)";
    switch (packet.payload.front()) {
    case igmp::kTypeQuery: {
        auto msg = igmp::Query::decode(packet.payload);
        if (!msg) return "IGMP Query (malformed)";
        return msg->group.is_unspecified() ? "IGMP Query (general)"
                                           : "IGMP Query grp=" + msg->group.to_string();
    }
    case igmp::kTypeReport: {
        auto msg = igmp::Report::decode(packet.payload);
        if (!msg) return "IGMP Report (malformed)";
        return "IGMP Report grp=" + msg->group.to_string();
    }
    case igmp::kTypeRpMap: {
        auto msg = igmp::RpMapReport::decode(packet.payload);
        if (!msg) return "IGMP RP-Map (malformed)";
        std::string out = "IGMP RP-Map grp=" + msg->group.to_string() + " rps=[";
        for (std::size_t i = 0; i < msg->rps.size(); ++i) {
            if (i > 0) out += " ";
            out += msg->rps[i].to_string();
        }
        return out + "]";
    }
    case igmp::kTypePim:
        return describe_pim(packet);
    case igmp::kTypeDvmrp: {
        auto code = dvmrp::peek_code(packet.payload);
        if (!code) return "DVMRP (malformed)";
        switch (*code) {
        case dvmrp::Code::kProbe:
            return "DVMRP Probe";
        case dvmrp::Code::kPrune: {
            auto msg = dvmrp::PruneMsg::decode(packet.payload);
            if (!msg) return "DVMRP Prune (malformed)";
            return "DVMRP Prune src=" + msg->source.to_string() +
                   " grp=" + msg->group.to_string();
        }
        case dvmrp::Code::kGraft: {
            auto msg = dvmrp::GraftMsg::decode(packet.payload);
            if (!msg) return "DVMRP Graft (malformed)";
            return "DVMRP Graft src=" + msg->source.to_string() +
                   " grp=" + msg->group.to_string();
        }
        }
        return "DVMRP (unknown)";
    }
    default:
        return "IGMP type=0x" + std::to_string(packet.payload.front());
    }
}

std::string describe_cbt(const net::Packet& packet) {
    auto code = cbt::peek_code(packet.payload);
    if (!code) return "CBT (malformed)";
    switch (*code) {
    case cbt::Code::kJoinRequest: {
        auto msg = cbt::JoinRequest::decode(packet.payload);
        if (!msg) return "CBT Join-Request (malformed)";
        return "CBT Join-Request grp=" + msg->group.to_string() +
               " core=" + msg->core.to_string();
    }
    case cbt::Code::kJoinAck:
        return "CBT Join-Ack";
    case cbt::Code::kQuit:
        return "CBT Quit";
    case cbt::Code::kEchoRequest:
        return "CBT Echo-Request";
    case cbt::Code::kEchoReply:
        return "CBT Echo-Reply";
    case cbt::Code::kFlush:
        return "CBT Flush";
    }
    return "CBT (unknown)";
}

} // namespace

std::string describe_packet(const net::Packet& packet) {
    switch (packet.proto) {
    case net::IpProto::kIgmp:
        return describe_igmp_family(packet);
    case net::IpProto::kCbt:
        return describe_cbt(packet);
    case net::IpProto::kUdp:
        if (packet.dst.is_multicast()) {
            return "DATA grp=" + packet.dst.to_string() +
                   " seq=" + std::to_string(packet.seq);
        }
        return "DATA (unicast-encapsulated) seq=" + std::to_string(packet.seq);
    case net::IpProto::kOspf:
        if (!packet.payload.empty() && packet.payload.front() == 3) {
            auto msg = mospf::MembershipLsa::decode(packet.payload);
            if (msg) {
                return "MOSPF Membership-LSA origin=" + msg->origin.to_string() +
                       " groups=" + std::to_string(msg->groups.size());
            }
        }
        if (!packet.payload.empty() && packet.payload.front() == 1) return "LS Hello";
        if (!packet.payload.empty() && packet.payload.front() == 2) return "LS LSA";
        return "OSPF (unknown)";
    case net::IpProto::kRip:
        return "DV Update";
    }
    return "proto=" + std::to_string(static_cast<int>(packet.proto));
}

PacketTracer::PacketTracer(topo::Network& network) : network_(&network) {
    tap_token_ = network_->add_packet_tap(
        [this](const topo::Segment& segment, const net::Frame& frame) {
            on_frame(segment, frame);
        });
}

PacketTracer::~PacketTracer() { network_->remove_packet_tap(tap_token_); }

bool PacketTracer::concerns_group(const net::Packet& packet) const {
    if (!group_.has_value()) return true;
    const std::string needle = group_->to_string();
    if (packet.dst == group_->address()) return true;
    // Cheap but effective: the decoded description names the group.
    return describe_packet(packet).find(needle) != std::string::npos;
}

void PacketTracer::on_frame(const topo::Segment& segment, const net::Frame& frame) {
    if (!enabled_) return;
    if (proto_.has_value() && frame.packet.proto != *proto_) return;
    if (!concerns_group(frame.packet)) return;
    records_.push_back(
        Record{network_->simulator().now(), segment.id(), frame.packet});
}

std::size_t PacketTracer::count_matching(const std::string& needle) const {
    std::size_t n = 0;
    for (const Record& r : records_) {
        if (describe_packet(r.packet).find(needle) != std::string::npos) ++n;
    }
    return n;
}

std::string PacketTracer::dump() const {
    std::string out;
    char head[96];
    for (const Record& r : records_) {
        std::snprintf(head, sizeof(head), "%10.3fms  seg%-3d  %-15s > %-15s  ",
                      static_cast<double>(r.at) / sim::kMillisecond, r.segment_id,
                      r.packet.src.to_string().c_str(),
                      r.packet.dst.to_string().c_str());
        out += head;
        out += describe_packet(r.packet);
        out += '\n';
    }
    return out;
}

} // namespace pimlib::trace
