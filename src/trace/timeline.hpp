// Causal join-transaction timelines: stitches the telemetry event log,
// completed causal spans, and the provenance flight recorder into one
// Chrome trace-event JSON file loadable in Perfetto / chrome://tracing.
//
// The rendering contract:
//   - one track (pid 1, tid per node) per router/host, named by metadata
//     "thread_name" events, carrying control-plane decisions ("X" slices)
//     and data-plane hop records from the provenance recorder
//   - flow arrows ("s"/"f" pairs) tie cause to effect across tracks:
//     igmp-report → join-sent, join-sent → join-received, prune-sent →
//     prune-received, register-sent → register-received, and consecutive
//     hops of one provenance packet id
//   - async "b"/"e" pairs on pid 2 render each completed SpanTracker span
//     (join-to-data, spt-switch, rp-failover) as a transaction bar, so the
//     IGMP report → (*,G) joins → register → SPT switchover → first
//     delivery sequence reads left-to-right as one end-to-end story
//
// Everything user-controlled (node names, groups, details) passes through
// telemetry::json_escape; sim-time is µs, which is exactly Chrome's `ts`
// unit, so timestamps are copied through unscaled.
#pragma once

#include <string>

#include "provenance/provenance.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"

namespace pimlib::trace {

struct TimelineConfig {
    /// Nominal width of instant decisions: wide enough to click in
    /// Perfetto, narrow against protocol timescales (ms..s).
    sim::Time slice_duration = 10; // µs
    /// Include data-plane hop slices from the provenance recorder (bounded
    /// by its ring capacity per node).
    bool include_provenance = true;
    /// Include CPU profiler zone slices (pid 3) when the profiler holds
    /// records. Profiler timestamps are host nanoseconds, not sim-time, so
    /// they render on their own process track with a timebase starting at
    /// the earliest retained record; each slice's sim-time is in args.
    bool include_profile = true;
};

/// Builds the Chrome trace-event JSON ({"traceEvents":[...]}) from the
/// hub's event log + spans and, optionally, the attached flight recorder.
/// Pure function of its inputs — call at end of run (or any checkpoint).
[[nodiscard]] std::string chrome_timeline_json(const telemetry::Hub& hub,
                                               const provenance::Recorder* recorder,
                                               TimelineConfig config = {});

} // namespace pimlib::trace
