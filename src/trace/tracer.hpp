// Packet tracing: a wiretap over every segment of a network that records
// (and can pretty-print) the frames crossing it, decoding the control
// protocols of this library — PIM, IGMP, DVMRP, CBT, and the unicast
// routing messages — into human-readable one-liners. Invaluable when
// debugging protocol interactions; see examples/quickstart for usage.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "topo/network.hpp"

namespace pimlib::trace {

/// One captured frame.
struct Record {
    sim::Time at = 0;
    int segment_id = -1;
    net::Packet packet;
};

/// Decodes `packet`'s payload into a protocol-aware one-line description,
/// e.g. "PIM Join/Prune grp=224.1.1.1 to=10.0.1.2 join=[*,RP 192.168.0.3]".
[[nodiscard]] std::string describe_packet(const net::Packet& packet);

class PacketTracer {
public:
    /// Installs this tracer as one of the network's wiretaps; any number of
    /// tracers and probes can capture the same network concurrently.
    explicit PacketTracer(topo::Network& network);
    ~PacketTracer();

    PacketTracer(const PacketTracer&) = delete;
    PacketTracer& operator=(const PacketTracer&) = delete;

    /// Only record frames for this multicast group (control messages that
    /// name the group included; unrelated traffic skipped).
    void set_group_filter(std::optional<net::GroupAddress> group) { group_ = group; }
    /// Only record frames of this IP protocol.
    void set_proto_filter(std::optional<net::IpProto> proto) { proto_ = proto; }
    /// Pause/resume capture without uninstalling.
    void set_enabled(bool enabled) { enabled_ = enabled; }

    [[nodiscard]] const std::vector<Record>& records() const { return records_; }
    void clear() { records_.clear(); }

    /// Number of captured frames matching a predicate over descriptions
    /// (substring match), e.g. count_matching("Register").
    [[nodiscard]] std::size_t count_matching(const std::string& needle) const;

    /// The whole capture as "time  segment  src->dst  description" lines.
    [[nodiscard]] std::string dump() const;

private:
    void on_frame(const topo::Segment& segment, const net::Frame& frame);
    [[nodiscard]] bool concerns_group(const net::Packet& packet) const;

    topo::Network* network_;
    int tap_token_ = 0;
    std::optional<net::GroupAddress> group_;
    std::optional<net::IpProto> proto_;
    bool enabled_ = true;
    std::vector<Record> records_;
};

} // namespace pimlib::trace
