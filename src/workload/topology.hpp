// Materializes a graph::TransitStubGraph into a packet-level topo::Network:
// one router per graph node, one link per edge (transit links slower than
// stub links, metrics from edge weights), a receiver LAN with one bank host
// on every stub router, and optional sender hosts spread across stub
// domains. The result plugs straight into scenario::* stacks; RPs/cores
// belong on transit routers (the wide-area core).
#pragma once

#include <random>
#include <string>
#include <vector>

#include "graph/transit_stub.hpp"
#include "topo/network.hpp"

namespace pimlib::workload {

struct MaterializeOptions {
    sim::Time transit_delay = 10 * sim::kMillisecond;
    sim::Time access_delay = 3 * sim::kMillisecond;
    sim::Time stub_delay = 1 * sim::kMillisecond;
    sim::Time lan_delay = sim::kMillisecond / 10;
    /// Sender hosts to create, round-robin across stub LANs ("senderN").
    int senders = 0;
};

/// The materialized network: indexes line up with graph node ids.
struct TransitStubNetwork {
    graph::TransitStubGraph graph;
    std::vector<topo::Router*> routers;   // per graph node
    std::vector<topo::Segment*> lans;     // per stub router (bank LANs)
    std::vector<topo::Host*> bank_hosts;  // "bankN", one per LAN, same order
    std::vector<topo::Host*> senders;     // "senderN"

    [[nodiscard]] std::vector<topo::Router*> transit_routers() const;
    [[nodiscard]] std::vector<topo::Router*> stub_routers() const;
};

/// Generates a transit-stub graph from `options` using `rng` and builds it
/// into `network` (which should be empty). Router names encode the
/// hierarchy: transit "tD-N", stub "sD-N" (D = domain id, N = index within
/// the domain).
TransitStubNetwork build_transit_stub(topo::Network& network,
                                      const graph::TransitStubOptions& options,
                                      std::mt19937& rng,
                                      const MaterializeOptions& materialize = {});

} // namespace pimlib::workload
