// Aggregated host bank: one IGMP-facing agent standing in for N receivers
// on a LAN, with O(1) state per (bank, group) instead of N HostAgent
// objects. The key observation — already implicit in IGMP's report
// suppression (RFC 1112) — is that a LAN's contribution to the routing
// protocol collapses to one bit per group: "at least one member here".
// So a bank keeps per-group member *counts* and drives its underlying
// igmp::HostAgent only on the 0→1 (first join: unsolicited reports, data
// plane join) and 1→0 (last leave: stop answering queries, membership ages
// out) transitions. This is what lets bench/churn_scale push 100k+
// simulated receivers through a few hundred topo::Host objects.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "igmp/host_agent.hpp"

namespace pimlib::workload {

class HostBank {
public:
    /// Wraps an existing host agent (one per bank LAN, created by the
    /// scenario stack). `capacity` is the number of receivers the bank
    /// stands in for; per-group membership is clamped to it.
    HostBank(igmp::HostAgent& agent, int capacity);
    ~HostBank();

    HostBank(const HostBank&) = delete;
    HostBank& operator=(const HostBank&) = delete;

    /// Adds up to `n` members of `group`; returns how many were admitted
    /// (less than `n` only when the bank saturates at capacity). The first
    /// admitted member triggers the underlying agent's join.
    int join(net::GroupAddress group, int n = 1);

    /// Removes up to `n` members; returns how many actually left. The last
    /// member leaving triggers the underlying agent's leave.
    int leave(net::GroupAddress group, int n = 1);

    [[nodiscard]] int members(net::GroupAddress group) const;
    /// Sum of members over all groups (one receiver joined to two groups
    /// counts twice, matching the membership-state cost it induces).
    [[nodiscard]] std::size_t total_members() const { return total_; }
    [[nodiscard]] int capacity() const { return capacity_; }
    [[nodiscard]] topo::Host& host() { return agent_->host(); }
    [[nodiscard]] igmp::HostAgent& agent() { return *agent_; }

    /// Fired once per first-join when the first data packet for the group
    /// arrives: the join-to-data latency seen by the bank's leading
    /// receiver. Latencies are also retained in join_to_data_seconds().
    using FirstDataCallback = std::function<void(net::GroupAddress, sim::Time latency)>;
    void set_first_data_callback(FirstDataCallback callback) {
        first_data_cb_ = std::move(callback);
    }
    [[nodiscard]] const std::vector<double>& join_to_data_seconds() const {
        return join_to_data_s_;
    }

private:
    igmp::HostAgent* agent_;
    int capacity_;
    std::size_t total_ = 0;
    std::map<net::GroupAddress, int> counts_;
    // first-join time per group still waiting for its first data packet
    std::map<net::GroupAddress, sim::Time> awaiting_data_;
    std::vector<double> join_to_data_s_;
    FirstDataCallback first_data_cb_;
};

} // namespace pimlib::workload
