#include "workload/topology.hpp"

#include <map>

#include "topo/segment.hpp"

namespace pimlib::workload {

std::vector<topo::Router*> TransitStubNetwork::transit_routers() const {
    std::vector<topo::Router*> out;
    for (int id : graph.transit_nodes) out.push_back(routers[static_cast<std::size_t>(id)]);
    return out;
}

std::vector<topo::Router*> TransitStubNetwork::stub_routers() const {
    std::vector<topo::Router*> out;
    for (int id : graph.stub_nodes) out.push_back(routers[static_cast<std::size_t>(id)]);
    return out;
}

TransitStubNetwork build_transit_stub(topo::Network& network,
                                      const graph::TransitStubOptions& options,
                                      std::mt19937& rng,
                                      const MaterializeOptions& materialize) {
    TransitStubNetwork out;
    out.graph = graph::transit_stub_graph(options, rng);
    const graph::TransitStubGraph& g = out.graph;

    // Routers, named by hierarchy position ("t0-1" = transit domain 0 node
    // 1, "s5-2" = stub domain 5 node 2). Per-domain indices restart at 0.
    std::map<int, int> next_in_domain;
    out.routers.reserve(static_cast<std::size_t>(g.node_count()));
    for (int id = 0; id < g.node_count(); ++id) {
        const int d = g.domain[static_cast<std::size_t>(id)];
        const int k = next_in_domain[d]++;
        const std::string name = (g.is_transit[static_cast<std::size_t>(id)] ? "t" : "s") +
                                 std::to_string(d) + "-" + std::to_string(k);
        out.routers.push_back(&network.add_router(name));
    }

    // Links per edge. Delay class follows the edge's endpoints: both
    // transit -> long haul, mixed -> access, both stub -> intra-domain.
    for (int u = 0; u < g.node_count(); ++u) {
        for (const auto& e : g.graph.neighbors(u)) {
            if (e.to < u) continue;
            const bool ut = g.is_transit[static_cast<std::size_t>(u)];
            const bool vt = g.is_transit[static_cast<std::size_t>(e.to)];
            const sim::Time delay = ut && vt ? materialize.transit_delay
                                   : ut != vt ? materialize.access_delay
                                              : materialize.stub_delay;
            network.add_link(*out.routers[static_cast<std::size_t>(u)],
                             *out.routers[static_cast<std::size_t>(e.to)], delay,
                             static_cast<int>(e.weight));
        }
    }

    // One receiver LAN + bank host per stub router.
    for (std::size_t i = 0; i < g.stub_nodes.size(); ++i) {
        topo::Router* router = out.routers[static_cast<std::size_t>(g.stub_nodes[i])];
        topo::Segment& lan = network.add_lan({router}, materialize.lan_delay);
        out.lans.push_back(&lan);
        out.bank_hosts.push_back(
            &network.add_host("bank" + std::to_string(i), lan));
    }

    // Senders round-robin across stub LANs (offset so sender0 does not
    // share bank0's LAN unless there are more senders than LANs).
    for (int sidx = 0; sidx < materialize.senders; ++sidx) {
        const std::size_t lan_index =
            out.lans.empty() ? 0
                             : (static_cast<std::size_t>(sidx) * 7 + 1) % out.lans.size();
        if (out.lans.empty()) break;
        out.senders.push_back(&network.add_host("sender" + std::to_string(sidx),
                                                *out.lans[lan_index]));
    }

    return out;
}

} // namespace pimlib::workload
