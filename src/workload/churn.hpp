// Membership/sender churn models: seeded, deterministic generators that
// exercise the paper's core premise — sparse groups whose members and
// senders come and go across a wide area (§1.1, §2). Everything here emits
// plain simulator events, so any protocol stack under any topology can be
// driven by the same workload:
//
//   - ChurnEngine: Poisson join arrivals over a catalog of groups with
//     Zipf-distributed popularity, configurable session-duration
//     distributions (fixed / exponential / Pareto heavy-tail), and optional
//     flash-crowd bursts. Joins land on aggregated HostBanks, so the
//     receiver population scales far past the host-object count.
//   - OnOffSender: a source cycling between talking and silent periods,
//     the sender-side churn that exercises register/SPT/(S,G)-expiry paths.
//
// Determinism: one std::mt19937_64 seeded from ChurnConfig::seed, with all
// draws made in simulator event order — two runs with equal seeds produce
// identical event sequences and therefore identical metrics.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "workload/host_bank.hpp"

namespace pimlib::topo {
class Network;
}

namespace pimlib::workload {

/// Zipf(s) sampler over ranks [0, n): P(rank k) ∝ 1/(k+1)^s. Precomputes
/// the CDF once; each draw is one uniform variate plus a binary search.
/// Exponent 0 degenerates to the uniform distribution.
class ZipfSampler {
public:
    ZipfSampler(int n, double exponent);

    [[nodiscard]] int sample(std::mt19937_64& rng) const;
    [[nodiscard]] int size() const { return static_cast<int>(cdf_.size()); }
    /// P(rank <= k), for tests.
    [[nodiscard]] double cdf(int k) const { return cdf_.at(static_cast<std::size_t>(k)); }

private:
    std::vector<double> cdf_;
};

/// How long a receiver stays joined once it arrives.
struct SessionDuration {
    enum class Kind { kFixed, kExponential, kPareto };

    Kind kind = Kind::kExponential;
    sim::Time mean = 10 * sim::kSecond;
    /// Pareto tail index alpha (> 1 so the mean exists); the scale is set
    /// from `mean` as x_m = mean * (alpha - 1) / alpha.
    double pareto_shape = 1.5;

    /// Draws a duration (clamped to >= 1ms so a leave never precedes its
    /// join in the event order).
    [[nodiscard]] sim::Time draw(std::mt19937_64& rng) const;
};

/// A flash crowd: `joins` arrivals packed into `window` starting at `at`,
/// all storming the catalog group of popularity rank `group_rank` and
/// staying for `hold`-drawn sessions — the "everyone tunes in" transient
/// that stresses first-join bursts and the RP.
struct FlashCrowd {
    sim::Time at = 0;
    int joins = 0;
    sim::Time window = sim::kSecond;
    SessionDuration hold{SessionDuration::Kind::kFixed, 5 * sim::kSecond, 1.5};
    int group_rank = 0;
};

struct ChurnConfig {
    std::uint64_t seed = 1;
    /// Poisson arrival rate of individual receiver joins, per simulated
    /// second, across the whole bank population.
    double joins_per_sec = 100.0;
    SessionDuration session{};
    /// Group catalog: `groups` addresses starting at `group_base`, with
    /// popularity rank r mapping to base + r.
    int groups = 16;
    net::Ipv4Address group_base{net::Ipv4Address(224, 9, 0, 1)};
    double zipf_exponent = 1.0;
    sim::Time start = 0;
    /// No new arrivals at/after this time (0 = never stop; sessions still
    /// drain via their scheduled leaves).
    sim::Time stop = 0;
    std::vector<FlashCrowd> flash_crowds;
    /// Record every join/leave in history() (tests; off for big benches).
    bool record_history = false;
};

/// Drives join/leave churn over a set of host banks and accounts for it in
/// the network's telemetry hub:
///   pimlib_workload_joins_total / _leaves_total / _saturated_joins_total
///   pimlib_workload_membership (gauge) / _membership_peak (gauge)
///   pimlib_workload_join_to_data_seconds (histogram, first-join latency)
class ChurnEngine {
public:
    ChurnEngine(topo::Network& network, std::vector<HostBank*> banks, ChurnConfig config);

    ChurnEngine(const ChurnEngine&) = delete;
    ChurnEngine& operator=(const ChurnEngine&) = delete;

    /// Schedules the arrival process and flash crowds. Call once.
    void start();

    [[nodiscard]] net::GroupAddress group(int rank) const;
    [[nodiscard]] const ChurnConfig& config() const { return config_; }

    // Aggregate workload accounting (mirrored into the telemetry registry).
    [[nodiscard]] std::uint64_t joins() const { return joins_; }
    [[nodiscard]] std::uint64_t leaves() const { return leaves_; }
    /// Joins refused because the target bank was at capacity for the group.
    [[nodiscard]] std::uint64_t saturated_joins() const { return saturated_; }
    [[nodiscard]] std::size_t membership() const { return membership_; }
    [[nodiscard]] std::size_t membership_peak() const { return peak_; }
    /// First-join-to-first-data latencies (seconds), across all banks.
    [[nodiscard]] const std::vector<double>& join_to_data_seconds() const {
        return join_to_data_s_;
    }

    struct HistoryEntry {
        sim::Time at;
        int bank;
        int group_rank;
        bool join; // false = leave
    };
    [[nodiscard]] const std::vector<HistoryEntry>& history() const { return history_; }

private:
    void schedule_next_arrival();
    void arrive(int bank_index, int rank, sim::Time hold);
    void depart(int bank_index, int rank, int count);
    void schedule_flash(const FlashCrowd& crowd);

    topo::Network* network_;
    std::vector<HostBank*> banks_;
    ChurnConfig config_;
    std::mt19937_64 rng_;
    ZipfSampler zipf_;
    std::uint64_t joins_ = 0;
    std::uint64_t leaves_ = 0;
    std::uint64_t saturated_ = 0;
    std::size_t membership_ = 0;
    std::size_t peak_ = 0;
    std::vector<double> join_to_data_s_;
    std::vector<HistoryEntry> history_;
    telemetry::Counter* joins_total_;
    telemetry::Counter* leaves_total_;
    telemetry::Counter* saturated_total_;
    telemetry::Gauge* membership_gauge_;
    telemetry::Gauge* peak_gauge_;
    telemetry::Histogram* join_to_data_hist_;
};

/// Sender on/off cycling: starting at `start`, the host streams to the
/// group for `on` (packets every `interval`), goes silent for `off`, and
/// repeats until `stop` (0 = forever) — the workload that keeps (S,G)
/// state, registers and SPT switchovers churning alongside membership.
struct OnOffSenderConfig {
    sim::Time on = 5 * sim::kSecond;
    sim::Time off = 5 * sim::kSecond;
    sim::Time interval = 100 * sim::kMillisecond;
    sim::Time start = 0;
    sim::Time stop = 0;
};

class OnOffSender {
public:
    OnOffSender(topo::Host& host, net::GroupAddress group, OnOffSenderConfig config);

    OnOffSender(const OnOffSender&) = delete;
    OnOffSender& operator=(const OnOffSender&) = delete;

    void start();
    [[nodiscard]] int cycles_started() const { return cycles_; }

private:
    void begin_cycle();

    topo::Host* host_;
    net::GroupAddress group_;
    OnOffSenderConfig config_;
    int cycles_ = 0;
};

} // namespace pimlib::workload
