#include "workload/host_bank.hpp"

#include <algorithm>

#include "topo/network.hpp"

namespace pimlib::workload {

HostBank::HostBank(igmp::HostAgent& agent, int capacity)
    : agent_(&agent), capacity_(capacity < 1 ? 1 : capacity) {
    agent_->host().set_data_observer([this](const topo::Host::ReceivedRecord& rec) {
        auto it = awaiting_data_.find(rec.group);
        if (it == awaiting_data_.end()) return;
        const sim::Time latency = rec.at - it->second;
        awaiting_data_.erase(it);
        join_to_data_s_.push_back(static_cast<double>(latency) / sim::kSecond);
        if (first_data_cb_) first_data_cb_(rec.group, latency);
    });
}

HostBank::~HostBank() { agent_->host().set_data_observer(nullptr); }

int HostBank::join(net::GroupAddress group, int n) {
    if (n <= 0) return 0;
    int& count = counts_[group];
    const int admitted = std::min(n, capacity_ - count);
    if (admitted <= 0) return 0;
    if (count == 0) {
        awaiting_data_[group] = agent_->host().simulator().now();
        agent_->join(group);
    }
    count += admitted;
    total_ += static_cast<std::size_t>(admitted);
    return admitted;
}

int HostBank::leave(net::GroupAddress group, int n) {
    if (n <= 0) return 0;
    auto it = counts_.find(group);
    if (it == counts_.end() || it->second == 0) return 0;
    const int removed = std::min(n, it->second);
    it->second -= removed;
    total_ -= static_cast<std::size_t>(removed);
    if (it->second == 0) {
        counts_.erase(it);
        awaiting_data_.erase(group);
        agent_->leave(group);
    }
    return removed;
}

int HostBank::members(net::GroupAddress group) const {
    auto it = counts_.find(group);
    return it == counts_.end() ? 0 : it->second;
}

} // namespace pimlib::workload
