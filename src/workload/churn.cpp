#include "workload/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"

namespace pimlib::workload {

ZipfSampler::ZipfSampler(int n, double exponent) {
    if (n < 1) throw std::invalid_argument("ZipfSampler: need at least one rank");
    cdf_.resize(static_cast<std::size_t>(n));
    double sum = 0;
    for (int k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
        cdf_[static_cast<std::size_t>(k)] = sum;
    }
    for (double& c : cdf_) c /= sum;
    cdf_.back() = 1.0; // guard against accumulated rounding
}

int ZipfSampler::sample(std::mt19937_64& rng) const {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u(rng));
    return static_cast<int>(it - cdf_.begin());
}

sim::Time SessionDuration::draw(std::mt19937_64& rng) const {
    double seconds = static_cast<double>(mean) / sim::kSecond;
    switch (kind) {
    case Kind::kFixed:
        break;
    case Kind::kExponential: {
        std::exponential_distribution<double> dist(1.0 / seconds);
        seconds = dist(rng);
        break;
    }
    case Kind::kPareto: {
        // Inverse-CDF Pareto with scale chosen so E[X] = mean.
        const double alpha = pareto_shape > 1.0 ? pareto_shape : 1.0001;
        const double scale = seconds * (alpha - 1.0) / alpha;
        std::uniform_real_distribution<double> u(0.0, 1.0);
        seconds = scale / std::pow(1.0 - u(rng), 1.0 / alpha);
        break;
    }
    }
    const auto t = static_cast<sim::Time>(seconds * sim::kSecond);
    return std::max<sim::Time>(t, sim::kMillisecond);
}

ChurnEngine::ChurnEngine(topo::Network& network, std::vector<HostBank*> banks,
                         ChurnConfig config)
    : network_(&network),
      banks_(std::move(banks)),
      config_(std::move(config)),
      rng_(config_.seed),
      zipf_(config_.groups, config_.zipf_exponent) {
    if (banks_.empty()) throw std::invalid_argument("ChurnEngine: no banks");
    telemetry::Registry& reg = network_->telemetry().registry();
    joins_total_ = &reg.counter("pimlib_workload_joins_total", {},
                                "receiver joins issued by the churn engine");
    leaves_total_ = &reg.counter("pimlib_workload_leaves_total", {},
                                 "receiver leaves issued by the churn engine");
    saturated_total_ =
        &reg.counter("pimlib_workload_saturated_joins_total", {},
                     "joins refused because the target bank was at capacity");
    membership_gauge_ = &reg.gauge("pimlib_workload_membership", {},
                                   "current aggregate receiver membership");
    peak_gauge_ = &reg.gauge("pimlib_workload_membership_peak", {},
                             "high-water mark of aggregate membership");
    join_to_data_hist_ = &reg.histogram(
        "pimlib_workload_join_to_data_seconds",
        telemetry::Buckets::exponential(0.0001, 2.0, 24), {},
        "first-join to first-data latency under churn");
    for (std::size_t i = 0; i < banks_.size(); ++i) {
        banks_[i]->set_first_data_callback(
            [this](net::GroupAddress, sim::Time latency) {
                const double s = static_cast<double>(latency) / sim::kSecond;
                join_to_data_s_.push_back(s);
                join_to_data_hist_->observe(s);
            });
    }
}

net::GroupAddress ChurnEngine::group(int rank) const {
    return net::GroupAddress{net::Ipv4Address(config_.group_base.to_uint() +
                                              static_cast<std::uint32_t>(rank))};
}

void ChurnEngine::start() {
    sim::Simulator& sim = network_->simulator();
    sim.schedule_at(std::max(config_.start, sim.now()), [this] { schedule_next_arrival(); });
    for (const FlashCrowd& crowd : config_.flash_crowds) schedule_flash(crowd);
}

void ChurnEngine::schedule_next_arrival() {
    if (config_.joins_per_sec <= 0) return;
    std::exponential_distribution<double> gap(config_.joins_per_sec);
    const auto wait =
        std::max<sim::Time>(static_cast<sim::Time>(gap(rng_) * sim::kSecond), 1);
    sim::Simulator& sim = network_->simulator();
    const sim::Time at = sim.now() + wait;
    if (config_.stop > 0 && at >= config_.stop) return;
    sim.schedule_at(at, [this] {
        std::uniform_int_distribution<std::size_t> pick(0, banks_.size() - 1);
        const auto bank = static_cast<int>(pick(rng_));
        const int rank = zipf_.sample(rng_);
        const sim::Time hold = config_.session.draw(rng_);
        arrive(bank, rank, hold);
        schedule_next_arrival();
    });
}

void ChurnEngine::arrive(int bank_index, int rank, sim::Time hold) {
    PROF_ZONE("workload.churn");
    HostBank& bank = *banks_[static_cast<std::size_t>(bank_index)];
    if (bank.join(group(rank)) == 0) {
        ++saturated_;
        saturated_total_->inc();
        return;
    }
    ++joins_;
    joins_total_->inc();
    ++membership_;
    if (membership_ > peak_) {
        peak_ = membership_;
        peak_gauge_->set(static_cast<double>(peak_));
    }
    membership_gauge_->set(static_cast<double>(membership_));
    if (config_.record_history) {
        history_.push_back({network_->simulator().now(), bank_index, rank, true});
    }
    network_->simulator().schedule(hold, [this, bank_index, rank] {
        depart(bank_index, rank, 1);
    });
}

void ChurnEngine::depart(int bank_index, int rank, int count) {
    PROF_ZONE("workload.churn");
    HostBank& bank = *banks_[static_cast<std::size_t>(bank_index)];
    const int left = bank.leave(group(rank), count);
    if (left == 0) return;
    leaves_ += static_cast<std::uint64_t>(left);
    leaves_total_->inc(static_cast<std::uint64_t>(left));
    membership_ -= static_cast<std::size_t>(left);
    membership_gauge_->set(static_cast<double>(membership_));
    if (config_.record_history) {
        history_.push_back({network_->simulator().now(), bank_index, rank, false});
    }
}

void ChurnEngine::schedule_flash(const FlashCrowd& crowd) {
    network_->simulator().schedule_at(crowd.at, [this, crowd] {
        // All of the crowd's randomness is drawn here, in one event, so the
        // burst is deterministic regardless of how it interleaves with the
        // background arrival process.
        std::uniform_int_distribution<std::size_t> pick(0, banks_.size() - 1);
        std::uniform_int_distribution<sim::Time> offset(
            0, std::max<sim::Time>(crowd.window, 1));
        for (int i = 0; i < crowd.joins; ++i) {
            const auto bank = static_cast<int>(pick(rng_));
            const sim::Time at = offset(rng_);
            const sim::Time hold = crowd.hold.draw(rng_);
            network_->simulator().schedule(at, [this, bank, crowd, hold] {
                arrive(bank, crowd.group_rank, hold);
            });
        }
    });
}

OnOffSender::OnOffSender(topo::Host& host, net::GroupAddress group,
                         OnOffSenderConfig config)
    : host_(&host), group_(group), config_(config) {}

void OnOffSender::start() {
    host_->simulator().schedule_at(
        std::max(config_.start, host_->simulator().now()), [this] { begin_cycle(); });
}

void OnOffSender::begin_cycle() {
    const sim::Time now = host_->simulator().now();
    if (config_.stop > 0 && now >= config_.stop) return;
    ++cycles_;
    const int count = static_cast<int>(config_.on / std::max<sim::Time>(config_.interval, 1));
    host_->send_stream(group_, std::max(count, 1), config_.interval);
    host_->simulator().schedule(config_.on + config_.off, [this] { begin_cycle(); });
}

} // namespace pimlib::workload
