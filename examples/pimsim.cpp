// pimsim — scripted scenario driver. Runs an event-scripted multicast
// simulation described in a single text file: a topology block (the
// topo::TopologyBuilder format) or a generated transit-stub topology,
// protocol selection, an optional churn workload, and a timeline of
// events. Prints a packet trace (optional) and a delivery report.
//
// Usage: pimsim [scenario-file]     (no argument: runs a built-in demo)
//
// Scenario format:
//
//     seed 42                          # one seed reproduces the whole run
//     topology
//       router A B C D
//       lan lan0 A
//       host receiver lan0
//       link A B
//       link B C
//       link B D
//       lan lan1 D
//       host source lan1
//     end
//     # ... or a generated wide-area topology instead of the block:
//     # topology transit-stub transit=2 transit-size=3 stubs=2 stub-size=3 senders=2
//     #   (routers t<domain>-<n> / s<domain>-<n>, bank hosts bankN on LANs
//     #    lanN, sender hosts senderN)
//     protocol pim-sm                  # pim-sm | pim-dm | dvmrp | cbt | mospf
//     rp 224.1.1.1 C                   # pim-sm: RP list; cbt: core
//     candidate-bsr C 20               # pim-sm: bootstrap-elect the BSR
//                                      #   instead (priority, then address)
//     candidate-rp 224.0.0.0/4 C 20    # pim-sm: advertise C to the elected
//                                      #   BSR as RP for the range; routers
//                                      #   learn the RP set from Bootstrap
//                                      #   floods (no static rp needed)
//     spt-policy immediate             # immediate | never | threshold M WINDOW_MS
//     trace on                         # wiretap with decoded control messages
//     at 100ms join receiver 224.1.1.1
//     at 300ms send source 224.1.1.1 count=10 interval=50ms
//     at 900ms fail-link A B           # fault: cut the A-B segment
//     at 1500ms heal-link A B
//     at 900ms crash-router B          # fault: all ifaces down, soft state lost
//     at 1500ms restart-router B
//     at 900ms loss-link A B 0.3       # fault: 30% per-frame loss
//     at 900ms loss-lan lan0 0.3
//     at 900ms partition A B C D       # fault: cut links A-B and C-D together
//     at 1500ms heal-partition
//     at 2s    leave receiver 224.1.1.1
//     at 2s    dump-state
//     at 2s    dump-metrics prom        # telemetry: prom | json registry dump
//     at 2s    dump-events              # telemetry: structured event log
//     at 2s    snapshot                 # telemetry: MRIB snapshot (diffed
//                                       #   against the previous snapshot)
//     provenance on                     # per-packet flight recorder (optional
//                                       #   ring capacity: provenance on 4096)
//     at 2s    mtrace source receiver 224.1.1.1
//                                       # provenance: hop path + per-hop
//                                       #   latency of the last delivered packet
//     at 2s    dump-provenance          # provenance: merged recorder JSON
//                                       #   + per-router drop summary
//     profile on                        # CPU sampling zones (sim dispatch,
//                                       #   timer cascade, dataplane, per-
//                                       #   protocol control, churn); optional
//                                       #   ring capacity: profile on 131072
//     at 1s    profile off               # runtime toggle mid-run
//     dump-profile out.collapsed        # end-of-run collapsed stacks
//                                       #   (flamegraph.pl / speedscope input)
//                                       #   + zone table on stdout; the CPU
//                                       #   track also lands in dump-timeline
//     telemetry off                     # disable event/span tracing (default on)
//     snapshot-every 500ms              # periodic MRIB snapshots
//     monitor trees 100ms               # live tree-health analytics: periodic
//                                       #   budgeted cache walks publishing
//                                       #   pimlib_tree_* gauges/histograms
//     watchdog on                       # online invariant watchdogs (lost/dup
//                                       #   packets, iif-RPF, stale entries)
//     mutate skip-spt-bit-handshake     # enable a seeded protocol bug (see
//                                       #   pimcheck --list) — watchdog demo
//     dump-timeline out.json            # causal join-transaction timeline:
//                                       #   Chrome trace-event JSON written at
//                                       #   end of run; open in Perfetto
//     workload churn rate=200 mean=2s groups=8 zipf=1.0 bank=1000
//                                       # Poisson join/leave churn over host
//                                       #   banks (options: session=
//                                       #   exponential|fixed|pareto,
//                                       #   shape=A, start=T, stop=T)
//     workload flash at=1s joins=500 window=200ms hold=1s rank=0
//                                       # flash crowd on catalog rank 0
//     workload sender sender0 224.9.0.1 on=1s off=1s interval=50ms
//                                       # sender on/off cycling
//     run 3s
//
// Every fault goes through fault::FaultInjector, so unicast routing
// recomputes automatically and crashed routers lose (and rebuild) their
// protocol state; the run ends with the injector's fault log.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "check/scenario.hpp"
#include "check/watchdog.hpp"
#include "telemetry/profiler/export.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "fault/fault_injector.hpp"
#include "provenance/provenance.hpp"
#include "scenario/stacks.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/tree_monitor.hpp"
#include "topo/builder.hpp"
#include "topo/segment.hpp"
#include "trace/timeline.hpp"
#include "trace/tracer.hpp"
#include "unicast/oracle_routing.hpp"
#include "workload/churn.hpp"
#include "workload/topology.hpp"

using namespace pimlib;

namespace {

constexpr const char* kDemoScenario = R"(topology
  router A B C D
  lan lan0 A
  host receiver lan0
  link A B
  link B C
  link B D
  lan lan1 D
  host source lan1
end
protocol pim-sm
rp 224.1.1.1 C
spt-policy threshold 3 10000
trace on
at 100ms join receiver 224.1.1.1
at 300ms send source 224.1.1.1 count=10 interval=50ms
at 1s dump-state
run 2s
)";

[[noreturn]] void fail(int line, const std::string& message) {
    // Thrown (not exit()) so the parser is embeddable: main catches and
    // returns 2, and tests/check_roundtrip_test.cpp includes this file with
    // PIMSIM_NO_MAIN to feed emitted counterexample scripts back through.
    throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

sim::Time parse_time(int line, const std::string& text) {
    long long amount = 0;
    std::size_t pos = 0;
    try {
        amount = std::stoll(text, &pos);
    } catch (...) {
        fail(line, "bad time '" + text + "'");
    }
    const std::string unit = text.substr(pos);
    if (unit == "s") return amount * sim::kSecond;
    if (unit == "ms") return amount * sim::kMillisecond;
    if (unit == "us") return amount * sim::kMicrosecond;
    fail(line, "bad time unit in '" + text + "' (use s/ms/us)");
}

net::GroupAddress parse_group(int line, const std::string& text) {
    auto addr = net::Ipv4Address::parse(text);
    if (!addr || !addr->is_multicast()) fail(line, "bad group '" + text + "'");
    return net::GroupAddress{*addr};
}

struct Scenario {
    topo::Network net;
    std::unique_ptr<topo::TopologyBuilder> topo;
    std::unique_ptr<workload::TransitStubNetwork> generated;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<fault::FaultInjector> faults;
    std::unique_ptr<trace::PacketTracer> tracer;
    std::unique_ptr<provenance::Recorder> recorder;
    std::unique_ptr<telemetry::TreeMonitor> monitor;
    std::unique_ptr<check::Watchdog> watchdog;
    std::string protocol = "pim-sm";
    std::unique_ptr<scenario::PimSmStack> pim_sm;
    std::unique_ptr<scenario::PimDmStack> pim_dm;
    std::unique_ptr<scenario::DvmrpStack> dvmrp;
    std::unique_ptr<scenario::CbtStack> cbt;
    std::unique_ptr<scenario::MospfStack> mospf;
    std::vector<std::unique_ptr<workload::HostBank>> banks;
    std::unique_ptr<workload::ChurnEngine> churn;
    std::vector<std::unique_ptr<workload::OnOffSender>> senders;
    sim::Time run_until = 0;

    // Name lookups that work for both topology sources (the named block and
    // the transit-stub generator).
    [[nodiscard]] topo::Router& router_ref(const std::string& name) {
        if (topo) return topo->router(name);
        for (topo::Router* r : generated->routers) {
            if (r->name() == name) return *r;
        }
        throw std::runtime_error("unknown router '" + name + "'");
    }
    [[nodiscard]] topo::Host& host_ref(const std::string& name) {
        if (topo) return topo->host(name);
        for (topo::Host* h : generated->bank_hosts) {
            if (h->name() == name) return *h;
        }
        for (topo::Host* h : generated->senders) {
            if (h->name() == name) return *h;
        }
        throw std::runtime_error("unknown host '" + name + "'");
    }
    [[nodiscard]] topo::Segment& lan_ref(const std::string& name) {
        if (topo) return topo->lan(name);
        // Generated bank LANs are addressable as lan0..lanN-1.
        if (name.rfind("lan", 0) == 0) {
            const std::size_t i = std::stoul(name.substr(3));
            if (i < generated->lans.size()) return *generated->lans[i];
        }
        throw std::runtime_error("unknown lan '" + name + "'");
    }
    [[nodiscard]] topo::Segment& link_ref(const std::string& a, const std::string& b) {
        if (topo) return topo->link(a, b);
        topo::Segment* seg = net.find_link(router_ref(a), router_ref(b));
        if (seg == nullptr) {
            throw std::runtime_error("no link between '" + a + "' and '" + b + "'");
        }
        return *seg;
    }

    scenario::StackBase& stack() {
        if (pim_sm) return *pim_sm;
        if (pim_dm) return *pim_dm;
        if (dvmrp) return *dvmrp;
        if (cbt) return *cbt;
        return *mospf;
    }

    void dump_metrics(const std::string& format) {
        std::printf("--- metrics at t=%.1fms (%s) ---\n",
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond,
                    format.c_str());
        net.telemetry().refresh_timer_gauges();
        if (prof::enabled()) {
            prof::publish_profile(prof::snapshot(), net.telemetry().registry());
        }
        const telemetry::Registry& reg = net.telemetry().registry();
        std::printf("%s", format == "json" ? telemetry::to_json(reg).c_str()
                                           : telemetry::to_prometheus(reg).c_str());
        if (format == "json") std::printf("\n");
    }

    void dump_events() {
        std::printf("--- event log at t=%.1fms ---\n",
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond);
        std::printf("%s", net.telemetry().events().dump().c_str());
    }

    void take_snapshot(bool print) {
        telemetry::Hub& hub = net.telemetry();
        telemetry::MribSnapshot snap = stack().capture_mrib();
        const telemetry::MribSnapshot* prev =
            hub.snapshots().empty() ? nullptr : &hub.snapshots().back();
        if (print) {
            std::printf("--- mrib snapshot at t=%.1fms (%zu entries) ---\n",
                        static_cast<double>(snap.at) / sim::kMillisecond,
                        snap.entry_count());
            if (prev == nullptr) {
                std::printf("%s", snap.to_text().c_str());
            } else {
                const telemetry::MribDiff d = telemetry::diff(*prev, snap);
                std::printf("%s", d.empty() ? "  (no structural change)\n"
                                            : d.to_text().c_str());
            }
        }
        hub.store_snapshot(std::move(snap));
    }

    void mtrace(const std::string& src_host, const std::string& dst_host,
                net::GroupAddress group) {
        std::printf("--- mtrace %s -> %s group %s at t=%.1fms ---\n",
                    src_host.c_str(), dst_host.c_str(),
                    group.to_string().c_str(),
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond);
        if (!recorder) {
            std::printf("  (provenance off; add 'provenance on' to the script)\n");
            return;
        }
        const provenance::Recorder::TraceResult result = recorder->trace(
            host_ref(src_host).address(), group.address(), dst_host);
        std::printf("%s", recorder->format_trace(result).c_str());
    }

    void dump_provenance() {
        std::printf("--- provenance dump at t=%.1fms ---\n",
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond);
        if (!recorder) {
            std::printf("  (provenance off; add 'provenance on' to the script)\n");
            return;
        }
        std::printf("%s\n", recorder->dump_json().c_str());
        const std::string drops = recorder->drop_summary();
        if (!drops.empty()) std::printf("drops: %s\n", drops.c_str());
    }

    void dump_state() {
        std::printf("--- state at t=%.1fms ---\n",
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond);
        for (const auto& router : net.routers()) {
            if (pim_sm) {
                auto& cache = pim_sm->pim_at(*router).cache();
                cache.for_each_wc([&](mcast::ForwardingEntry& e) {
                    std::printf("  %-10s %s\n", router->name().c_str(),
                                e.describe().c_str());
                });
                cache.for_each_sg([&](mcast::ForwardingEntry& e) {
                    std::printf("  %-10s %s\n", router->name().c_str(),
                                e.describe().c_str());
                });
            } else if (pim_dm) {
                pim_dm->pim_at(*router).cache().for_each_sg(
                    [&](mcast::ForwardingEntry& e) {
                        std::printf("  %-10s %s\n", router->name().c_str(),
                                    e.describe().c_str());
                    });
            } else if (dvmrp) {
                dvmrp->dvmrp_at(*router).cache().for_each_sg(
                    [&](mcast::ForwardingEntry& e) {
                        std::printf("  %-10s %s\n", router->name().c_str(),
                                    e.describe().c_str());
                    });
            }
        }
    }
};

void run_scenario(const std::string& text) {
    Scenario s;
    std::istringstream input(text);
    std::string raw;
    int line = 0;

    // The topology block must come first.
    std::string topo_spec;
    bool in_topology = false;
    bool topology_done = false;

    scenario::StackConfig config;
    config.igmp.query_interval = 10 * sim::kSecond;
    config.igmp.membership_timeout = 25 * sim::kSecond;
    config = config.scaled(0.01);

    struct PendingRp {
        net::GroupAddress group;
        std::vector<std::string> routers;
    };
    std::vector<PendingRp> rps;
    struct PendingCandidateBsr {
        std::string router;
        std::uint8_t priority;
    };
    std::vector<PendingCandidateBsr> candidate_bsrs;
    struct PendingCandidateRp {
        net::Prefix range;
        std::string router;
        std::uint8_t priority;
    };
    std::vector<PendingCandidateRp> candidate_rps;
    std::uint64_t global_seed = 0;
    bool churn_enabled = false;
    workload::ChurnConfig churn_cfg;
    int bank_capacity = 1000;
    struct SenderSpec {
        std::string host;
        net::GroupAddress group;
        workload::OnOffSenderConfig cfg;
    };
    std::vector<SenderSpec> sender_specs;
    pim::SptPolicy policy = pim::SptPolicy::immediate();
    bool want_trace = false;
    bool want_telemetry = true;
    bool want_provenance = false;
    bool want_watchdog = false;
    bool loss_possible = false; // faults/loss/churn scripted: gaps are expected
    sim::Time monitor_interval = 0;
    std::string timeline_path;
    bool want_profile = false;
    std::size_t profile_capacity = 0; // 0: keep the profiler's default
    std::string profile_path;
    std::size_t provenance_capacity = provenance::RecorderConfig{}.ring_capacity;
    sim::Time snapshot_every = 0;
    struct Event {
        sim::Time at;
        std::function<void(Scenario&)> action;
    };
    std::vector<Event> events;

    auto ensure_stack = [&](Scenario& sc) {
        if (sc.pim_sm || sc.pim_dm || sc.dvmrp || sc.cbt || sc.mospf) return;
        sc.routing = std::make_unique<unicast::OracleRouting>(sc.net);
        sc.faults = std::make_unique<fault::FaultInjector>(sc.net);
        if (want_trace) sc.tracer = std::make_unique<trace::PacketTracer>(sc.net);
        if (want_provenance) {
            provenance::RecorderConfig prov_cfg;
            prov_cfg.ring_capacity = provenance_capacity;
            sc.recorder = std::make_unique<provenance::Recorder>(
                sc.net.telemetry().registry(), prov_cfg);
            sc.net.set_provenance(sc.recorder.get());
        }
        if (sc.protocol == "pim-sm") {
            sc.pim_sm = std::make_unique<scenario::PimSmStack>(sc.net, config);
            sc.pim_sm->set_spt_policy(policy);
            for (const auto& rp : rps) {
                std::vector<net::Ipv4Address> addrs;
                for (const auto& name : rp.routers) {
                    addrs.push_back(sc.router_ref(name).router_id());
                }
                sc.pim_sm->set_rp(rp.group, addrs);
            }
            for (const auto& cand : candidate_bsrs) {
                sc.pim_sm->set_candidate_bsr(sc.router_ref(cand.router),
                                             cand.priority);
            }
            for (const auto& cand : candidate_rps) {
                sc.pim_sm->set_candidate_rp(sc.router_ref(cand.router),
                                            cand.range, cand.priority);
            }
        } else if (sc.protocol == "pim-dm") {
            sc.pim_dm = std::make_unique<scenario::PimDmStack>(sc.net, config);
        } else if (sc.protocol == "dvmrp") {
            sc.dvmrp = std::make_unique<scenario::DvmrpStack>(sc.net, config);
        } else if (sc.protocol == "cbt") {
            sc.cbt = std::make_unique<scenario::CbtStack>(sc.net, config);
            for (const auto& rp : rps) {
                sc.cbt->set_core(rp.group, sc.router_ref(rp.routers.front()).router_id());
            }
        } else if (sc.protocol == "mospf") {
            sc.mospf = std::make_unique<scenario::MospfStack>(sc.net, config);
        } else {
            throw std::runtime_error("unknown protocol '" + sc.protocol + "'");
        }
        sc.stack().wire_faults(*sc.faults);

        if (want_watchdog) {
            sc.watchdog = std::make_unique<check::Watchdog>(
                sc.net, [sp = &sc](const topo::Router& r) {
                    return sp->stack().cache_of(r);
                });
            if (sc.recorder) sc.watchdog->set_recorder(sc.recorder.get());
            sc.watchdog->set_loss_expected(loss_possible || churn_enabled);
            sc.watchdog->start();
        }
        if (monitor_interval > 0) {
            telemetry::TreeMonitorConfig mon_cfg;
            mon_cfg.interval = monitor_interval;
            sc.monitor = std::make_unique<telemetry::TreeMonitor>(
                sc.net,
                [sp = &sc](const topo::Router& r) {
                    return sp->stack().cache_of(r);
                },
                mon_cfg);
            sc.monitor->start();
        }

        if (churn_enabled) {
            // Bank hosts: the generated topology's bankN hosts, or every
            // scripted host that is not an on/off sender.
            std::vector<topo::Host*> bank_hosts;
            if (sc.generated) {
                bank_hosts = sc.generated->bank_hosts;
            } else {
                for (const auto& h : sc.net.hosts()) {
                    bool is_sender = false;
                    for (const auto& spec : sender_specs) {
                        if (spec.host == h->name()) is_sender = true;
                    }
                    if (!is_sender) bank_hosts.push_back(h.get());
                }
            }
            if (bank_hosts.empty()) {
                throw std::runtime_error("workload churn needs at least one host");
            }
            std::vector<workload::HostBank*> raw;
            for (topo::Host* h : bank_hosts) {
                sc.banks.push_back(std::make_unique<workload::HostBank>(
                    sc.stack().host_agent(*h), bank_capacity));
                raw.push_back(sc.banks.back().get());
            }
            sc.churn = std::make_unique<workload::ChurnEngine>(sc.net, raw, churn_cfg);
            // Catalog groups without an explicit rp/core directive get one
            // auto-assigned: transit routers round-robin on generated
            // topologies (the wide-area core), router 0 on scripted ones.
            if (sc.pim_sm || sc.cbt) {
                std::vector<topo::Router*> anchors =
                    sc.generated ? sc.generated->transit_routers()
                                 : std::vector<topo::Router*>{&sc.net.router(0)};
                for (int r = 0; r < churn_cfg.groups; ++r) {
                    const net::GroupAddress g = sc.churn->group(r);
                    bool covered = false;
                    for (const auto& rp : rps) {
                        if (rp.group == g) covered = true;
                    }
                    if (covered) continue;
                    topo::Router& anchor =
                        *anchors[static_cast<std::size_t>(r) % anchors.size()];
                    if (sc.pim_sm) {
                        sc.pim_sm->set_rp(g, {anchor.router_id()});
                    } else {
                        sc.cbt->set_core(g, anchor.router_id());
                    }
                }
            }
            sc.churn->start();
        }
        for (const SenderSpec& spec : sender_specs) {
            sc.senders.push_back(std::make_unique<workload::OnOffSender>(
                sc.host_ref(spec.host), spec.group, spec.cfg));
            sc.senders.back()->start();
        }
    };

    while (std::getline(input, raw)) {
        ++line;
        std::istringstream ls(raw);
        std::string word;
        if (!(ls >> word) || word.front() == '#') {
            if (in_topology) topo_spec += raw + "\n";
            continue;
        }
        if (in_topology) {
            if (word == "end") {
                in_topology = false;
                topology_done = true;
                s.topo = std::make_unique<topo::TopologyBuilder>(
                    topo::TopologyBuilder::parse(s.net, topo_spec));
            } else {
                topo_spec += raw + "\n";
            }
            continue;
        }
        if (word == "topology") {
            std::string mode;
            if (ls >> mode) {
                if (mode != "transit-stub") fail(line, "unknown topology mode '" + mode + "'");
                if (topology_done) fail(line, "duplicate topology");
                graph::TransitStubOptions opts;
                opts.transit_domains = 2;
                opts.transit_nodes = 3;
                opts.stub_domains = 2;
                opts.stub_nodes = 3;
                workload::MaterializeOptions mat;
                std::uint64_t graph_seed = 0;
                std::string opt;
                while (ls >> opt) {
                    if (opt.rfind("transit=", 0) == 0) {
                        opts.transit_domains = std::stoi(opt.substr(8));
                    } else if (opt.rfind("transit-size=", 0) == 0) {
                        opts.transit_nodes = std::stoi(opt.substr(13));
                    } else if (opt.rfind("stubs=", 0) == 0) {
                        opts.stub_domains = std::stoi(opt.substr(6));
                    } else if (opt.rfind("stub-size=", 0) == 0) {
                        opts.stub_nodes = std::stoi(opt.substr(10));
                    } else if (opt.rfind("senders=", 0) == 0) {
                        mat.senders = std::stoi(opt.substr(8));
                    } else if (opt.rfind("graph-seed=", 0) == 0) {
                        graph_seed = std::stoull(opt.substr(11));
                    } else {
                        fail(line, "unknown transit-stub option '" + opt + "'");
                    }
                }
                if (graph_seed == 0) graph_seed = global_seed != 0 ? global_seed : 1;
                std::mt19937 rng(static_cast<std::mt19937::result_type>(graph_seed));
                s.generated = std::make_unique<workload::TransitStubNetwork>(
                    workload::build_transit_stub(s.net, opts, rng, mat));
                topology_done = true;
            } else {
                in_topology = true;
            }
        } else if (word == "seed") {
            std::string value;
            ls >> value;
            try {
                global_seed = std::stoull(value);
            } catch (...) {
                fail(line, "seed needs an unsigned integer");
            }
            s.net.set_seed(global_seed);
            churn_cfg.seed = global_seed != 0 ? global_seed : churn_cfg.seed;
        } else if (word == "workload") {
            std::string kind;
            ls >> kind;
            std::string opt;
            if (kind == "churn") {
                churn_enabled = true;
                while (ls >> opt) {
                    if (opt.rfind("rate=", 0) == 0) {
                        churn_cfg.joins_per_sec = std::stod(opt.substr(5));
                    } else if (opt.rfind("mean=", 0) == 0) {
                        churn_cfg.session.mean = parse_time(line, opt.substr(5));
                    } else if (opt.rfind("groups=", 0) == 0) {
                        churn_cfg.groups = std::stoi(opt.substr(7));
                    } else if (opt.rfind("zipf=", 0) == 0) {
                        churn_cfg.zipf_exponent = std::stod(opt.substr(5));
                    } else if (opt.rfind("bank=", 0) == 0) {
                        bank_capacity = std::stoi(opt.substr(5));
                    } else if (opt.rfind("session=", 0) == 0) {
                        const std::string k = opt.substr(8);
                        if (k == "fixed") {
                            churn_cfg.session.kind = workload::SessionDuration::Kind::kFixed;
                        } else if (k == "exponential") {
                            churn_cfg.session.kind =
                                workload::SessionDuration::Kind::kExponential;
                        } else if (k == "pareto") {
                            churn_cfg.session.kind = workload::SessionDuration::Kind::kPareto;
                        } else {
                            fail(line, "session= takes fixed|exponential|pareto");
                        }
                    } else if (opt.rfind("shape=", 0) == 0) {
                        churn_cfg.session.pareto_shape = std::stod(opt.substr(6));
                    } else if (opt.rfind("start=", 0) == 0) {
                        churn_cfg.start = parse_time(line, opt.substr(6));
                    } else if (opt.rfind("stop=", 0) == 0) {
                        churn_cfg.stop = parse_time(line, opt.substr(5));
                    } else {
                        fail(line, "unknown churn option '" + opt + "'");
                    }
                }
            } else if (kind == "flash") {
                churn_enabled = true;
                workload::FlashCrowd crowd;
                while (ls >> opt) {
                    if (opt.rfind("at=", 0) == 0) {
                        crowd.at = parse_time(line, opt.substr(3));
                    } else if (opt.rfind("joins=", 0) == 0) {
                        crowd.joins = std::stoi(opt.substr(6));
                    } else if (opt.rfind("window=", 0) == 0) {
                        crowd.window = parse_time(line, opt.substr(7));
                    } else if (opt.rfind("hold=", 0) == 0) {
                        crowd.hold.mean = parse_time(line, opt.substr(5));
                    } else if (opt.rfind("rank=", 0) == 0) {
                        crowd.group_rank = std::stoi(opt.substr(5));
                    } else {
                        fail(line, "unknown flash option '" + opt + "'");
                    }
                }
                if (crowd.joins <= 0) fail(line, "flash needs joins=N");
                churn_cfg.flash_crowds.push_back(crowd);
            } else if (kind == "sender") {
                SenderSpec spec;
                std::string group;
                ls >> spec.host >> group;
                spec.group = parse_group(line, group);
                while (ls >> opt) {
                    if (opt.rfind("on=", 0) == 0) {
                        spec.cfg.on = parse_time(line, opt.substr(3));
                    } else if (opt.rfind("off=", 0) == 0) {
                        spec.cfg.off = parse_time(line, opt.substr(4));
                    } else if (opt.rfind("interval=", 0) == 0) {
                        spec.cfg.interval = parse_time(line, opt.substr(9));
                    } else if (opt.rfind("start=", 0) == 0) {
                        spec.cfg.start = parse_time(line, opt.substr(6));
                    } else if (opt.rfind("stop=", 0) == 0) {
                        spec.cfg.stop = parse_time(line, opt.substr(5));
                    } else {
                        fail(line, "unknown sender option '" + opt + "'");
                    }
                }
                sender_specs.push_back(std::move(spec));
            } else {
                fail(line, "unknown workload '" + kind + "' (churn|flash|sender)");
            }
        } else if (word == "protocol") {
            ls >> s.protocol;
        } else if (word == "rp") {
            std::string group;
            ls >> group;
            PendingRp rp{parse_group(line, group), {}};
            std::string name;
            while (ls >> name) rp.routers.push_back(name);
            if (rp.routers.empty()) fail(line, "rp needs at least one router");
            rps.push_back(std::move(rp));
        } else if (word == "candidate-bsr") {
            PendingCandidateBsr cand{{}, 0};
            if (!(ls >> cand.router)) fail(line, "candidate-bsr needs a router");
            int priority = 0;
            if (ls >> priority) {
                if (priority < 0 || priority > 255) {
                    fail(line, "candidate-bsr priority must be 0..255");
                }
                cand.priority = static_cast<std::uint8_t>(priority);
            }
            candidate_bsrs.push_back(std::move(cand));
        } else if (word == "candidate-rp") {
            std::string range_text;
            PendingCandidateRp cand{{}, {}, 0};
            if (!(ls >> range_text >> cand.router)) {
                fail(line, "candidate-rp needs: <group-or-prefix> <router> [priority]");
            }
            if (auto prefix = net::Prefix::parse(range_text)) {
                cand.range = *prefix;
            } else {
                cand.range = net::Prefix::host(parse_group(line, range_text).address());
            }
            int priority = 0;
            if (ls >> priority) {
                if (priority < 0 || priority > 255) {
                    fail(line, "candidate-rp priority must be 0..255");
                }
                cand.priority = static_cast<std::uint8_t>(priority);
            }
            candidate_rps.push_back(std::move(cand));
        } else if (word == "spt-policy") {
            std::string kind;
            ls >> kind;
            if (kind == "immediate") {
                policy = pim::SptPolicy::immediate();
            } else if (kind == "never") {
                policy = pim::SptPolicy::never();
            } else if (kind == "threshold") {
                int m = 0;
                long long window_ms = 0;
                ls >> m >> window_ms;
                if (m <= 0 || window_ms <= 0) fail(line, "threshold needs M WINDOW_MS");
                policy = pim::SptPolicy::threshold(m, window_ms * sim::kMillisecond);
            } else {
                fail(line, "unknown spt-policy '" + kind + "'");
            }
        } else if (word == "trace") {
            std::string flag;
            ls >> flag;
            want_trace = flag == "on";
        } else if (word == "provenance") {
            std::string flag;
            ls >> flag;
            want_provenance = flag == "on";
            long long capacity = 0;
            if (ls >> capacity) {
                if (capacity <= 0) fail(line, "provenance capacity must be positive");
                provenance_capacity = static_cast<std::size_t>(capacity);
            }
        } else if (word == "profile") {
            std::string flag;
            ls >> flag;
            if (flag != "on" && flag != "off") {
                fail(line, "profile takes on|off [ring capacity]");
            }
            want_profile = flag == "on";
            long long capacity = 0;
            if (ls >> capacity) {
                if (capacity <= 0) fail(line, "profile ring capacity must be positive");
                profile_capacity = static_cast<std::size_t>(capacity);
            }
        } else if (word == "dump-profile") {
            ls >> profile_path;
            if (profile_path.empty()) fail(line, "dump-profile needs a file path");
        } else if (word == "telemetry") {
            std::string flag;
            ls >> flag;
            want_telemetry = flag != "off";
        } else if (word == "snapshot-every") {
            std::string every;
            ls >> every;
            snapshot_every = parse_time(line, every);
            if (snapshot_every <= 0) fail(line, "snapshot-every needs a positive time");
        } else if (word == "monitor") {
            std::string what;
            std::string every;
            ls >> what >> every;
            if (what != "trees" || every.empty()) {
                fail(line, "monitor takes: trees <interval>");
            }
            monitor_interval = parse_time(line, every);
            if (monitor_interval <= 0) fail(line, "monitor interval must be positive");
        } else if (word == "watchdog") {
            std::string flag;
            ls >> flag;
            if (flag != "on" && flag != "off") fail(line, "watchdog takes on|off");
            want_watchdog = flag == "on";
        } else if (word == "mutate") {
            std::string name;
            ls >> name;
            if (!check::apply_mutation(name, config)) {
                fail(line, "unknown mutation '" + name + "' (see pimcheck --list)");
            }
        } else if (word == "dump-timeline") {
            ls >> timeline_path;
            if (timeline_path.empty()) fail(line, "dump-timeline needs a file path");
        } else if (word == "at") {
            if (!topology_done) fail(line, "'at' before topology block");
            std::string when;
            std::string verb;
            ls >> when >> verb;
            const sim::Time at = parse_time(line, when);
            if (verb == "join" || verb == "leave") {
                std::string host;
                std::string group;
                ls >> host >> group;
                const net::GroupAddress g = parse_group(line, group);
                const bool join = verb == "join";
                // A member that leaves mid-stream misses packets on purpose.
                if (!join) loss_possible = true;
                (void)s.host_ref(host); // validate now
                events.push_back({at, [host, g, join](Scenario& sc) {
                                      auto& agent = sc.stack().host_agent(
                                          sc.host_ref(host));
                                      if (join) {
                                          agent.join(g);
                                      } else {
                                          agent.leave(g);
                                      }
                                  }});
            } else if (verb == "send") {
                std::string host;
                std::string group;
                ls >> host >> group;
                const net::GroupAddress g = parse_group(line, group);
                int count = 1;
                sim::Time interval = 50 * sim::kMillisecond;
                std::string opt;
                while (ls >> opt) {
                    if (opt.rfind("count=", 0) == 0) {
                        count = std::stoi(opt.substr(6));
                    } else if (opt.rfind("interval=", 0) == 0) {
                        interval = parse_time(line, opt.substr(9));
                    } else {
                        fail(line, "unknown send option '" + opt + "'");
                    }
                }
                (void)s.host_ref(host);
                events.push_back({at, [host, g, count, interval](Scenario& sc) {
                                      sc.host_ref(host).send_stream(g, count, interval);
                                  }});
            } else if (verb == "fail-link" || verb == "heal-link") {
                std::string a;
                std::string b;
                ls >> a >> b;
                const bool up = verb == "heal-link";
                if (!up) loss_possible = true;
                (void)s.link_ref(a, b);
                events.push_back({at, [a, b, up](Scenario& sc) {
                                      auto& link = sc.link_ref(a, b);
                                      if (up) {
                                          sc.faults->restore_link(link);
                                      } else {
                                          sc.faults->cut_link(link);
                                      }
                                  }});
            } else if (verb == "crash-router" || verb == "restart-router") {
                std::string name;
                ls >> name;
                const bool crash = verb == "crash-router";
                if (crash) loss_possible = true;
                (void)s.router_ref(name);
                events.push_back({at, [name, crash](Scenario& sc) {
                                      auto& router = sc.router_ref(name);
                                      if (crash) {
                                          sc.faults->crash_router(router);
                                      } else {
                                          sc.faults->restart_router(router);
                                      }
                                  }});
            } else if (verb == "loss-link" || verb == "loss-lan") {
                std::string a;
                ls >> a;
                std::string b;
                if (verb == "loss-link") ls >> b;
                double rate = 0;
                ls >> rate;
                if (rate < 0 || rate >= 1) fail(line, "loss rate must be in [0,1)");
                loss_possible = true;
                const bool is_link = verb == "loss-link";
                if (is_link) {
                    (void)s.link_ref(a, b);
                } else {
                    (void)s.lan_ref(a);
                }
                events.push_back({at, [a, b, rate, is_link](Scenario& sc) {
                                      auto& seg = is_link ? sc.link_ref(a, b)
                                                          : sc.lan_ref(a);
                                      sc.faults->set_loss(seg, rate);
                                  }});
            } else if (verb == "partition") {
                std::vector<std::string> names;
                std::string name;
                while (ls >> name) names.push_back(name);
                if (names.empty() || names.size() % 2 != 0) {
                    fail(line, "partition needs router pairs: A B [C D ...]");
                }
                loss_possible = true;
                for (std::size_t i = 0; i < names.size(); i += 2) {
                    (void)s.link_ref(names[i], names[i + 1]);
                }
                events.push_back({at, [names](Scenario& sc) {
                                      std::vector<topo::Segment*> cut;
                                      for (std::size_t i = 0; i < names.size(); i += 2) {
                                          cut.push_back(&sc.link_ref(names[i], names[i + 1]));
                                      }
                                      sc.faults->partition(cut);
                                  }});
            } else if (verb == "heal-partition") {
                events.push_back({at, [](Scenario& sc) { sc.faults->heal_partition(); }});
            } else if (verb == "dump-state") {
                events.push_back({at, [](Scenario& sc) { sc.dump_state(); }});
            } else if (verb == "dump-metrics") {
                std::string format = "prom";
                ls >> format;
                if (format != "prom" && format != "json") {
                    fail(line, "dump-metrics takes prom|json");
                }
                events.push_back(
                    {at, [format](Scenario& sc) { sc.dump_metrics(format); }});
            } else if (verb == "dump-events") {
                events.push_back({at, [](Scenario& sc) { sc.dump_events(); }});
            } else if (verb == "snapshot") {
                events.push_back(
                    {at, [](Scenario& sc) { sc.take_snapshot(/*print=*/true); }});
            } else if (verb == "mtrace") {
                std::string src;
                std::string dst;
                std::string group;
                ls >> src >> dst >> group;
                const net::GroupAddress g = parse_group(line, group);
                (void)s.host_ref(src);
                (void)s.host_ref(dst);
                events.push_back({at, [src, dst, g](Scenario& sc) {
                                      sc.mtrace(src, dst, g);
                                  }});
            } else if (verb == "dump-provenance") {
                events.push_back({at, [](Scenario& sc) { sc.dump_provenance(); }});
            } else if (verb == "profile") {
                std::string flag;
                ls >> flag;
                if (flag != "on" && flag != "off") fail(line, "profile takes on|off");
                const bool on = flag == "on";
                events.push_back({at, [on](Scenario&) { prof::set_enabled(on); }});
            } else {
                fail(line, "unknown event '" + verb + "'");
            }
        } else if (word == "run") {
            std::string until;
            ls >> until;
            s.run_until = parse_time(line, until);
        } else {
            fail(line, "unknown directive '" + word + "'");
        }
    }
    if (!topology_done) fail(line, "missing topology block");
    if (s.run_until == 0) fail(line, "missing 'run' directive");

    s.net.telemetry().set_tracing(want_telemetry);
    const bool profiling = want_profile || !profile_path.empty();
    if (profiling) {
        prof::reset();
        if (profile_capacity > 0) prof::set_ring_capacity(profile_capacity);
        // Stamp every zone record with the sim time it covered, so the
        // flamegraph and the timeline's CPU track can be read against the
        // scenario's own clock.
        prof::set_time_source(
            [](const void* ctx) {
                return static_cast<std::int64_t>(
                    static_cast<const sim::Simulator*>(ctx)->now());
            },
            &s.net.simulator());
        prof::set_enabled(want_profile);
    }
    ensure_stack(s);
    for (const Event& e : events) {
        s.net.simulator().schedule_at(e.at, [&s, &e] { e.action(s); });
    }
    if (snapshot_every > 0) {
        for (sim::Time at = snapshot_every; at <= s.run_until; at += snapshot_every) {
            s.net.simulator().schedule_at(
                at, [&s] { s.take_snapshot(/*print=*/false); });
        }
    }
    s.net.run_for(s.run_until);

    if (s.tracer) {
        std::printf("--- packet trace (%zu frames) ---\n", s.tracer->records().size());
        std::printf("%s", s.tracer->dump().c_str());
    }
    std::printf("--- delivery report ---\n");
    for (const auto& host : s.net.hosts()) {
        if (host->received().empty()) continue;
        std::printf("  %-12s received %zu data packets (%zu duplicates)\n",
                    host->name().c_str(), host->received().size(),
                    host->duplicate_count());
    }
    if (s.churn) {
        std::printf("--- workload churn ---\n");
        std::printf("  joins=%llu leaves=%llu saturated=%llu peak=%zu current=%zu\n",
                    static_cast<unsigned long long>(s.churn->joins()),
                    static_cast<unsigned long long>(s.churn->leaves()),
                    static_cast<unsigned long long>(s.churn->saturated_joins()),
                    s.churn->membership_peak(), s.churn->membership());
        std::vector<double> lat = s.churn->join_to_data_seconds();
        if (!lat.empty()) {
            std::sort(lat.begin(), lat.end());
            auto pct = [&lat](double q) {
                const auto i = static_cast<std::size_t>(q * (static_cast<double>(lat.size()) - 1));
                return lat[i] * 1000.0;
            };
            std::printf("  join-to-data p50=%.2fms p90=%.2fms p99=%.2fms (%zu samples)\n",
                        pct(0.50), pct(0.90), pct(0.99), lat.size());
        }
    }
    std::printf("--- totals: data_tx=%llu control=%llu ---\n",
                static_cast<unsigned long long>(s.net.stats().total_data_packets()),
                static_cast<unsigned long long>(s.net.stats().total_control_messages()));
    if (!s.net.telemetry().spans().completed().empty()) {
        std::printf("--- span latencies ---\n");
        for (const auto& span : s.net.telemetry().spans().completed()) {
            std::printf("  %-14s %-28s %.1fms\n", span.kind.c_str(), span.key.c_str(),
                        static_cast<double>(span.latency()) / sim::kMillisecond);
        }
    }
    if (s.net.telemetry().snapshots().size() > 1) {
        const auto& snaps = s.net.telemetry().snapshots();
        std::size_t changed = 0;
        for (std::size_t i = 1; i < snaps.size(); ++i) {
            if (!telemetry::diff(snaps[i - 1], snaps[i]).empty()) ++changed;
        }
        std::printf("--- mrib snapshots: %zu taken, %zu with structural change ---\n",
                    snaps.size(), changed);
    }
    if (s.faults && !s.faults->events().empty()) {
        std::printf("--- injected faults ---\n");
        for (const auto& event : s.faults->events()) {
            std::printf("  %8.1fms  %s\n",
                        static_cast<double>(event.at) / sim::kMillisecond,
                        event.description.c_str());
        }
    }
    if (s.monitor) {
        s.monitor->stop();
        const auto& pass = s.monitor->last_pass();
        std::printf("--- tree monitor (pass %llu at t=%.1fms) ---\n",
                    static_cast<unsigned long long>(pass.pass),
                    static_cast<double>(pass.completed_at) / sim::kMillisecond);
        if (pass.pass == 0) {
            std::printf("  (no pass completed; lower the monitor interval or "
                        "run longer)\n");
        } else {
            std::printf("  groups=%zu entries=%zu (wc=%zu sg=%zu) "
                        "member-ports=%zu\n",
                        pass.groups, pass.entries, pass.wildcard_entries,
                        pass.sg_entries, pass.member_ports);
            std::printf("  depth-max=%d fanout-max=%zu stretch-max=%.3f\n",
                        pass.depth_max, pass.fanout_max, pass.stretch_max);
            std::printf("  link-flows-max=%zu links-used=%zu walks=%zu "
                        "(broken=%zu skipped=%zu)\n",
                        pass.link_flows_max, pass.links_used, pass.walks,
                        pass.broken_walks, pass.skipped_walks);
        }
    }
    if (s.watchdog) {
        s.watchdog->stop();
        std::printf("--- watchdog: %zu violation(s), %zu entries scanned ---\n",
                    s.watchdog->violations().size(), s.watchdog->entries_scanned());
        std::printf("%s", s.watchdog->dump().c_str());
    }
    if (profiling) {
        prof::set_enabled(false);
        if (!profile_path.empty()) {
            const prof::Report report = prof::snapshot();
            std::ofstream out(profile_path);
            if (!out) throw std::runtime_error("cannot write " + profile_path);
            out << prof::to_collapsed(report);
            std::printf("--- profile: %s (collapsed stacks; flamegraph.pl / "
                        "speedscope input) ---\n%s",
                        profile_path.c_str(), prof::to_table(report).c_str());
        }
        // The time source points at this scenario's simulator; detach before
        // the Scenario is destroyed.
        prof::set_time_source(nullptr, nullptr);
    }
    if (!timeline_path.empty()) {
        std::ofstream out(timeline_path);
        if (!out) {
            throw std::runtime_error("cannot write " + timeline_path);
        }
        out << trace::chrome_timeline_json(s.net.telemetry(), s.recorder.get());
        std::printf("--- timeline: %s (chrome trace-event JSON; open in "
                    "ui.perfetto.dev) ---\n",
                    timeline_path.c_str());
    }
}

} // namespace

#ifndef PIMSIM_NO_MAIN
int main(int argc, char** argv) {
    std::string text = kDemoScenario;
    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::fprintf(stderr, "pimsim: cannot open %s\n", argv[1]);
            return 2;
        }
        std::stringstream buf;
        buf << file.rdbuf();
        text = buf.str();
    } else {
        std::printf("(no scenario file given; running the built-in demo)\n\n");
    }
    try {
        run_scenario(text);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "pimsim: %s\n", e.what());
        return 2;
    }
    return 0;
}
#endif // PIMSIM_NO_MAIN
