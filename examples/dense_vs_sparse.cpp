// The paper's Figure 1 argument as a runnable comparison: the same sparse
// group (one member far from the source, many member-free branches) served
// by DVMRP dense mode and by PIM sparse mode, printing which links carried
// data and how much state each router holds.
#include <cstdio>
#include <memory>

#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

// A "wide area" line of 5 transit routers; the source hangs off one end,
// the single member off the other, and every transit router also has a
// member-free branch (router + LAN) representing sites with no receivers.
struct World {
    topo::Network net;
    std::vector<topo::Router*> transit;
    std::vector<topo::Router*> branch;
    std::vector<topo::Segment*> branch_links;
    topo::Host* source;
    topo::Host* member;
    std::unique_ptr<unicast::OracleRouting> routing;

    World() {
        for (int i = 0; i < 5; ++i) {
            transit.push_back(&net.add_router("T" + std::to_string(i)));
        }
        auto& slan = net.add_lan({transit[0]});
        source = &net.add_host("source", slan);
        for (int i = 0; i + 1 < 5; ++i) net.add_link(*transit[i], *transit[i + 1]);
        for (int i = 0; i < 5; ++i) {
            branch.push_back(&net.add_router("S" + std::to_string(i)));
            branch_links.push_back(&net.add_link(*transit[i], *branch[i]));
            net.add_lan({branch[i]}); // member-free edge LAN
        }
        auto& mlan = net.add_lan({transit[4]});
        member = &net.add_host("member", mlan);
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

scenario::StackConfig fast_config() {
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    return cfg.scaled(0.01);
}

template <typename StackT, typename StateFn>
void run(const char* name, StateFn state_of,
         const std::function<void(World&, StackT&)>& setup) {
    World w;
    StackT stack(w.net, fast_config());
    setup(w, stack);
    w.net.run_for(300 * sim::kMillisecond);
    stack.host_agent(*w.member).join(kGroup);
    w.net.run_for(300 * sim::kMillisecond);

    // Stream across several prune lifetimes so DVMRP's periodic broadcast
    // behavior shows.
    w.source->send_stream(kGroup, 50, 100 * sim::kMillisecond);
    w.net.run_for(5 * sim::kSecond);

    std::size_t state = 0;
    for (const auto& r : w.net.routers()) state += state_of(stack, *r);
    std::uint64_t branch_packets = 0;
    for (auto* link : w.branch_links) {
        branch_packets += w.net.stats().data_packets_on(link->id());
    }
    w.net.run_for(sim::kSecond);
    std::printf("%-8s delivered %zu/50 | total data transmissions %llu | "
                "packets onto member-free branches %llu | router state entries %zu\n",
                name, w.member->received_count(kGroup),
                static_cast<unsigned long long>(w.net.stats().total_data_packets()),
                static_cast<unsigned long long>(branch_packets), state);
}

} // namespace

int main() {
    std::printf("one member, one source, five member-free branch sites:\n\n");
    run<scenario::DvmrpStack>(
        "DVMRP",
        [](scenario::DvmrpStack& s, const topo::Router& r) {
            return s.dvmrp_at(r).cache().size();
        },
        [](World&, scenario::DvmrpStack&) {});
    run<scenario::PimSmStack>(
        "PIM-SM",
        [](scenario::PimSmStack& s, const topo::Router& r) {
            return s.pim_at(r).cache().size();
        },
        [](World& w, scenario::PimSmStack& s) {
            s.set_rp(kGroup, {w.transit[2]->router_id()});
        });
    std::printf(
        "\nDVMRP pays periodic truncated broadcasts toward every branch and\n"
        "keeps (S,G) state in every router; PIM's explicit joins touch only\n"
        "the source->member path (§1.1, §1.2).\n");
    return 0;
}
