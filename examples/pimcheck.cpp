// pimcheck: systematic state-space checker for the PIM-SM stack.
//
// Explores a scripted scenario under controlled nondeterminism — every
// same-instant event ordering, single-frame loss and fault placement is a
// decision point (see src/check) — and evaluates protocol invariant
// oracles on every branch. Failing branches are shrunk to a minimal set
// of forced choices and emitted as a replayable pimsim script plus a
// decoded packet trace.
//
// Two engines share that machinery:
//
//   forward   breadth-first over the choice tree, wave-parallel
//             (--threads), bit-identical for a fixed seed at any count
//   backward  fault-oriented (--backward TARGET): start from a target
//             invariant violation, rank fault placements and message
//             losses by pre-image relevance, replay best-first
//
//   pimcheck                          explore the walkthrough scenario
//   pimcheck --scenario rp-failover   explore the §3.9 failover scenario
//   pimcheck --mutate no-rp-bit-prune expect the seeded bug to be caught
//   pimcheck --backward blackhole --mutate fragile-rp-holdtime
//                                     hunt the bug backward from its symptom
//   pimcheck --replay 17:1,42:2       re-run one branch and show verdicts
//   pimcheck --determinism-check 3    N repeats x {1,8} threads, reports
//                                     must be bit-identical
//   pimcheck --smoke                  CI gate: baselines clean + every
//                                     seeded mutation caught by both
//                                     engines + thread determinism; writes
//                                     pimcheck-smoke.json and
//                                     pimcheck-metrics.prom (exit 1 on any
//                                     failure)
//
// Exit status: 0 when the run matches expectations (no violations without
// --mutate; at least one caught violation with --mutate), 1 otherwise,
// 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/backward.hpp"
#include "check/explorer.hpp"
#include "telemetry/exporters.hpp"

namespace {

using namespace pimlib;

void usage() {
    std::printf(
        "usage: pimcheck [options]\n"
        "  --scenario NAME     walkthrough | rp-failover | lan-assert |\n"
        "                      bsr-failover (default walkthrough; with\n"
        "                      --backward, the target's default scenario)\n"
        "  --mutate NAME       enable a seeded bug: skip-spt-bit-handshake |\n"
        "                      no-rp-bit-prune | assert-loser-keeps-forwarding |\n"
        "                      stale-rp-set-after-bsr-failover |\n"
        "                      one-shot-assert | fragile-rp-holdtime\n"
        "  --backward TARGET   fault-oriented search toward a target violation:\n"
        "                      blackhole | duplicate-on-lan |\n"
        "                      assert-loser-forwarding | stale-rp-set\n"
        "  --threads N         forward worker threads per wave (default 1;\n"
        "                      run-bounded results are bit-identical at any N)\n"
        "  --time-budget SECS  wall-clock budget for the search (default 50)\n"
        "  --max-runs N        cap on explored branches / backward replays\n"
        "                      (default 100000 forward, 2000 backward)\n"
        "  --max-depth N       forced choices per branch (default 3 forward,\n"
        "                      2 backward)\n"
        "  --children N        sampled child branches per run (default 800)\n"
        "  --checkpoint-ms N   MRIB hash cadence in sim ms (default 1)\n"
        "  --seed N            frontier sampling seed (default 1)\n"
        "  --stop-at-first     end the search at the first violation\n"
        "  --replay SPEC       run the single branch SPEC (e.g. \"17:1,42:2\")\n"
        "  --forced-fault L    apply fault candidate L unconditionally (with\n"
        "                      --replay)\n"
        "  --determinism-check N  run the same bounded search N times at 1 and\n"
        "                      8 threads; fail unless all reports are identical\n"
        "  --out DIR           where counterexample files go (default .)\n"
        "  --list              print scenarios, mutations and targets\n"
        "  --smoke             CI gate (clean baselines + every mutation caught\n"
        "                      forward and backward + thread determinism)\n");
}

bool write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) return false;
    out << content;
    return static_cast<bool>(out);
}

std::string save_counterexample(const std::string& dir, const std::string& scenario,
                                const std::string& mutation, std::size_t index,
                                const check::Counterexample& ce) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best effort; write reports
    const std::string base = dir + "/pimcheck-" + scenario +
                             (mutation.empty() ? "" : "-" + mutation) + "-" +
                             std::to_string(index);
    if (!write_file(base + ".pimsim", ce.script)) {
        std::fprintf(stderr, "pimcheck: cannot write %s.pimsim\n", base.c_str());
        return {};
    }
    (void)write_file(base + ".trace", ce.trace_dump);
    if (!ce.provenance_dump.empty()) {
        (void)write_file(base + ".provenance.json", ce.provenance_dump);
    }
    return base;
}

void print_counterexamples(const std::vector<check::Counterexample>& ces,
                           const std::string& scenario, const std::string& mutation,
                           const std::string& out_dir) {
    for (std::size_t i = 0; i < ces.size(); ++i) {
        const check::Counterexample& ce = ces[i];
        std::printf("  counterexample %zu: choices [%s]\n", i,
                    check::format_choices(ce.choices).c_str());
        for (const check::Violation& v : ce.violations) {
            std::printf("    %s: %s\n", v.oracle.c_str(), v.detail.c_str());
        }
        if (!ce.provenance_summary.empty()) {
            std::printf("    drops: %s\n", ce.provenance_summary.c_str());
        }
        const std::string base =
            save_counterexample(out_dir, scenario, mutation, i, ce);
        if (!base.empty()) {
            std::printf("    replay script: %s.pimsim  trace: %s.trace\n",
                        base.c_str(), base.c_str());
            if (!ce.provenance_dump.empty()) {
                std::printf("    post-mortem: %s.provenance.json\n", base.c_str());
            }
        }
    }
}

void print_report(const check::ExploreOptions& options,
                  const check::ExploreReport& report, const std::string& out_dir) {
    std::printf("scenario %s%s%s: %zu runs, %zu distinct MRIB states, "
                "%zu violating branch(es), %.1fs%s\n",
                options.scenario.c_str(),
                options.mutation.empty() ? "" : " --mutate ",
                options.mutation.c_str(), report.runs, report.deduped_states,
                report.violating_runs, report.elapsed_seconds,
                report.frontier_exhausted ? " (frontier exhausted)" : "");
    print_counterexamples(report.counterexamples, options.scenario,
                          options.mutation, out_dir);
}

void print_backward_report(const check::BackwardOptions& options,
                           const check::BackwardReport& report,
                           const std::string& out_dir) {
    std::printf("backward %s on %s%s%s: %zu replays (%zu to first hit), "
                "%zu target hit(s), %zu candidates ranked, %.1fs%s\n",
                report.target.c_str(), report.scenario.c_str(),
                options.mutation.empty() ? "" : " --mutate ",
                options.mutation.c_str(), report.replays, report.replays_to_hit,
                report.target_hits, report.candidates_ranked,
                report.elapsed_seconds,
                report.exhausted ? " (candidates exhausted)" : "");
    print_counterexamples(report.counterexamples, report.scenario,
                          options.mutation, out_dir);
}

int run_replay(const check::ExploreOptions& options, const std::string& spec,
               const std::string& forced_fault, const std::string& out_dir) {
    const auto choices = check::parse_choices(spec);
    if (!choices) {
        std::fprintf(stderr, "pimcheck: bad --replay spec '%s'\n", spec.c_str());
        return 2;
    }
    check::RunConfig cfg;
    cfg.choices = *choices;
    cfg.mutation = options.mutation;
    cfg.forced_fault = forced_fault;
    cfg.collect_trace = true;
    cfg.collect_provenance = true;
    cfg.checkpoint_every = options.checkpoint_every;
    const check::RunResult result = check::run_scenario(options.scenario, cfg);
    // The watchdog pass runs separately: its periodic tick events join the
    // same-instant ordering batches, which renumbers every later choice
    // point — an instrumented run is NOT the branch the explorer found, so
    // the oracle verdict above must come from the uninstrumented replay.
    check::RunConfig wd_cfg = cfg;
    wd_cfg.collect_trace = false;
    wd_cfg.collect_provenance = false;
    wd_cfg.watchdog = true;
    const check::RunResult wd = check::run_scenario(options.scenario, wd_cfg);
    std::printf("replayed branch [%s]: %zu events to t=%.3fs, %zu state hashes, "
                "clean=%s, converged=%s%s\n",
                spec.c_str(), result.events,
                static_cast<double>(result.end_time) / sim::kSecond,
                result.state_hashes.size(), result.clean ? "yes" : "no",
                result.converged ? "yes" : "no",
                result.choices_applied ? "" : " (WARNING: choices not applied)");
    for (const check::Violation& v : result.violations) {
        std::printf("  violation %s: %s\n", v.oracle.c_str(), v.detail.c_str());
    }
    if (result.violations.empty()) std::printf("  all oracles passed\n");
    if (!result.provenance_summary.empty()) {
        std::printf("  drops: %s\n", result.provenance_summary.c_str());
    }
    if (wd.watchdog_count > 0) {
        std::printf("  online watchdogs (instrumented re-run) raised %zu "
                    "violation(s):\n%s",
                    wd.watchdog_count, wd.watchdog_report.c_str());
    } else {
        std::printf("  online watchdogs (instrumented re-run): quiet\n");
    }
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string trace_path = out_dir + "/pimcheck-replay.trace";
    if (write_file(trace_path, result.trace_dump)) {
        std::printf("  trace: %s\n", trace_path.c_str());
    }
    const std::string timeline_path = out_dir + "/pimcheck-replay.timeline.json";
    if (write_file(timeline_path, result.timeline_json)) {
        std::printf("  timeline: %s (chrome trace-event JSON; open in Perfetto)\n",
                    timeline_path.c_str());
    }
    if (!wd.watchdog_report.empty()) {
        const std::string wd_path = out_dir + "/pimcheck-replay.watchdog.txt";
        if (write_file(wd_path, wd.watchdog_report)) {
            std::printf("  watchdog findings: %s\n", wd_path.c_str());
        }
    }
    if (!result.provenance_dump.empty()) {
        const std::string prov_path = out_dir + "/pimcheck-replay.provenance.json";
        if (write_file(prov_path, result.provenance_dump)) {
            std::printf("  post-mortem: %s\n", prov_path.c_str());
        }
    }
    return result.violations.empty() ? 0 : 1;
}

/// One-line fingerprint of everything a report claims. Two reports with
/// the same fingerprint made the same decisions in the same order.
std::string fingerprint(const check::ExploreReport& r) {
    std::ostringstream os;
    os << r.runs << '/' << r.deduped_states << '/' << r.violating_runs << '/'
       << r.skipped_branches << '/' << r.frontier_exhausted;
    for (const check::Counterexample& ce : r.counterexamples) {
        os << '/' << check::format_choices(ce.choices);
    }
    return os.str();
}

/// Repeats a run-bounded search N times at 1 and 8 threads and fails
/// unless every report is bit-identical — the determinism contract the
/// wave-parallel explorer promises for fixed seeds.
int run_determinism_check(check::ExploreOptions base, std::size_t repeats) {
    base.time_budget_seconds = 3600; // run-bounded: the deterministic regime
    if (base.max_runs > 400) base.max_runs = 400;
    std::string want;
    bool ok = true;
    for (std::size_t rep = 0; rep < repeats && ok; ++rep) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            check::ExploreOptions o = base;
            o.threads = threads;
            const std::string got = fingerprint(check::explore(o));
            std::printf("determinism rep %zu threads %zu: %s\n", rep, threads,
                        got.c_str());
            if (want.empty()) {
                want = got;
            } else if (got != want) {
                std::printf("DETERMINISM FAIL: report diverged from %s\n",
                            want.c_str());
                ok = false;
                break;
            }
        }
    }
    std::printf("determinism: %s (%zu repeats x {1,8} threads, %zu runs)\n",
                ok ? "PASS" : "FAIL", repeats, base.max_runs);
    return ok ? 0 : 1;
}

int run_backward(const check::BackwardOptions& options, const std::string& out_dir) {
    const check::BackwardReport report = check::backward_search(options);
    print_backward_report(options, report, out_dir);
    if (options.mutation.empty()) {
        // Healthy protocol: the search coming up dry is the pass.
        return report.violating_runs == 0 ? 0 : 1;
    }
    return report.found() ? 0 : 1;
}

struct MutationVerdict {
    std::string mutation;
    std::string target;
    std::string scenario;
    bool requires_search = false;
    std::size_t backward_replays = 0;
    std::size_t backward_replays_to_hit = 0;
    bool backward_found = false;
    std::size_t forward_runs = 0;
    bool forward_found = false;
    bool forward_capped = false; // forward_runs is a lower bound (cap hit)
    double ratio = 0.0;          // forward_runs / backward_replays_to_hit
    bool ok = false;
};

/// CI gate: every unmutated scenario must survive a bounded forward search
/// with zero violations; each seeded mutation must be caught by the
/// backward engine (and by forward where tractable) with a replayable
/// counterexample; the loss-dependent mutations must show backward's
/// replays-to-hit advantage; and a bounded forward search must be
/// bit-identical at 1 and 8 threads. Writes pimcheck-smoke.json and
/// pimcheck-metrics.prom to out_dir for CI artifact upload.
int run_smoke(check::ExploreOptions base, const std::string& out_dir) {
    bool ok = true;
    telemetry::Registry metrics;

    // --- unmutated baselines ---------------------------------------------
    base.mutation.clear();
    base.metrics = &metrics;
    std::size_t baseline_states = 0;
    struct BaselineVerdict {
        std::string scenario;
        std::size_t runs = 0;
        bool clean = false;
    };
    std::vector<BaselineVerdict> baselines;
    for (const std::string& scenario : check::scenario_names()) {
        check::ExploreOptions bo = base;
        bo.scenario = scenario;
        bo.time_budget_seconds = scenario == "walkthrough" ? 20.0 : 8.0;
        const check::ExploreReport report = check::explore(bo);
        print_report(bo, report, out_dir);
        baseline_states += report.deduped_states;
        baselines.push_back({scenario, report.runs, report.clean()});
        if (!report.clean()) {
            std::printf("SMOKE FAIL: unmutated %s has violations\n",
                        scenario.c_str());
            ok = false;
        }
    }

    // --- seeded mutations, both engines ----------------------------------
    // Loss-dependent mutations are exactly where forward search struggles
    // (the triggering loss hides among thousands of placements), so forward
    // runs under a cap and reports a lower bound when it doesn't hit;
    // backward must beat it by 5x. Everywhere else backward may not be
    // worse than forward.
    constexpr std::size_t kForwardCap = 400;
    constexpr double kRequiredAdvantage = 5.0;
    std::vector<MutationVerdict> verdicts;
    for (const std::string& mutation : check::known_mutations()) {
        MutationVerdict v;
        v.mutation = mutation;
        v.target = check::target_for_mutation(mutation);
        v.scenario = check::scenario_for_mutation(mutation);
        v.requires_search = check::mutation_requires_search(mutation);
        if (v.target.empty()) {
            std::printf("SMOKE FAIL: mutation %s has no backward target\n",
                        mutation.c_str());
            ok = false;
            verdicts.push_back(v);
            continue;
        }

        check::BackwardOptions bo;
        bo.scenario = v.scenario;
        bo.mutation = mutation;
        bo.target = v.target;
        bo.checkpoint_every = base.checkpoint_every;
        bo.metrics = &metrics;
        const check::BackwardReport back = check::backward_search(bo);
        print_backward_report(bo, back, out_dir);
        v.backward_replays = back.replays;
        v.backward_replays_to_hit = back.replays_to_hit;
        v.backward_found = back.found();

        check::ExploreOptions fo = base;
        fo.scenario = v.scenario;
        fo.mutation = mutation;
        fo.stop_at_first_violation = true;
        fo.time_budget_seconds = 60.0;
        fo.max_runs = v.requires_search ? kForwardCap : 50;
        const check::ExploreReport fwd = check::explore(fo);
        print_report(fo, fwd, out_dir);
        v.forward_found = fwd.violating_runs > 0;
        v.forward_capped = !v.forward_found;
        v.forward_runs = v.forward_found ? fwd.runs : fo.max_runs;
        if (v.backward_replays_to_hit > 0) {
            v.ratio = static_cast<double>(v.forward_runs) /
                      static_cast<double>(v.backward_replays_to_hit);
        }

        v.ok = v.backward_found && !back.counterexamples.empty();
        if (!v.ok) {
            std::printf("SMOKE FAIL: backward search missed mutation %s\n",
                        mutation.c_str());
        }
        if (v.requires_search) {
            if (v.ratio < kRequiredAdvantage) {
                std::printf("SMOKE FAIL: backward advantage on %s is %.1fx "
                            "(forward %s%zu vs %zu replays), want >= %.0fx\n",
                            mutation.c_str(), v.ratio,
                            v.forward_capped ? ">=" : "", v.forward_runs,
                            v.backward_replays_to_hit, kRequiredAdvantage);
                v.ok = false;
            }
        } else {
            if (!v.forward_found) {
                std::printf("SMOKE FAIL: forward search missed mutation %s\n",
                            mutation.c_str());
                v.ok = false;
            } else if (v.backward_replays_to_hit > v.forward_runs) {
                std::printf("SMOKE FAIL: backward took %zu replays on %s, "
                            "forward only %zu\n",
                            v.backward_replays_to_hit, mutation.c_str(),
                            v.forward_runs);
                v.ok = false;
            }
        }
        ok = ok && v.ok;
        verdicts.push_back(v);
    }

    // --- thread determinism cross-check ----------------------------------
    // Bit-identity is the contract and holds on any machine; the wall-clock
    // speedup is only physically observable with real cores, so it is
    // recorded always but enforced only where >= 4 hardware threads exist.
    check::ExploreOptions t1 = base;
    t1.scenario = "walkthrough";
    t1.max_runs = 150;
    t1.time_budget_seconds = 3600;
    t1.threads = 1;
    check::ExploreOptions t8 = t1;
    t8.threads = 8;
    const check::ExploreReport rep1 = check::explore(t1);
    const check::ExploreReport rep8 = check::explore(t8);
    const bool identical = fingerprint(rep1) == fingerprint(rep8);
    const double speedup = rep8.elapsed_seconds > 0
                               ? rep1.elapsed_seconds / rep8.elapsed_seconds
                               : 0.0;
    const unsigned hw = std::thread::hardware_concurrency();
    const bool enforce_speedup = hw >= 4;
    std::printf("threads: 1 vs 8 on %zu runs: %s, speedup %.2fx "
                "(%u hardware threads%s)\n",
                t1.max_runs, identical ? "bit-identical" : "DIVERGED", speedup,
                hw, enforce_speedup ? "" : "; speedup not enforced");
    if (!identical) {
        std::printf("SMOKE FAIL: 1-thread and 8-thread reports diverged\n");
        ok = false;
    }
    if (enforce_speedup && speedup < 3.0) {
        std::printf("SMOKE FAIL: 8-thread speedup %.2fx < 3x on %u cores\n",
                    speedup, hw);
        ok = false;
    }

    // --- artifacts --------------------------------------------------------
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    std::ostringstream json;
    json << "{\n  \"baselines\": [";
    for (std::size_t i = 0; i < baselines.size(); ++i) {
        const BaselineVerdict& b = baselines[i];
        json << (i ? ",\n    " : "\n    ") << "{\"scenario\": \"" << b.scenario
             << "\", \"runs\": " << b.runs
             << ", \"clean\": " << (b.clean ? "true" : "false") << "}";
    }
    json << "\n  ],\n  \"mutations\": [";
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        const MutationVerdict& v = verdicts[i];
        json << (i ? ",\n    " : "\n    ") << "{\"mutation\": \"" << v.mutation
             << "\", \"target\": \"" << v.target << "\", \"scenario\": \""
             << v.scenario << "\", \"requires_search\": "
             << (v.requires_search ? "true" : "false")
             << ", \"backward_replays\": " << v.backward_replays
             << ", \"backward_replays_to_hit\": " << v.backward_replays_to_hit
             << ", \"backward_found\": " << (v.backward_found ? "true" : "false")
             << ", \"forward_runs\": " << v.forward_runs
             << ", \"forward_found\": " << (v.forward_found ? "true" : "false")
             << ", \"forward_runs_is_lower_bound\": "
             << (v.forward_capped ? "true" : "false") << ", \"ratio\": " << v.ratio
             << ", \"ok\": " << (v.ok ? "true" : "false") << "}";
    }
    json << "\n  ],\n  \"thread_check\": {\"runs\": " << t1.max_runs
         << ", \"identical\": " << (identical ? "true" : "false")
         << ", \"t1_seconds\": " << rep1.elapsed_seconds
         << ", \"t8_seconds\": " << rep8.elapsed_seconds
         << ", \"speedup\": " << speedup << ", \"hardware_threads\": " << hw
         << ", \"speedup_enforced\": " << (enforce_speedup ? "true" : "false")
         << "},\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
    const std::string json_path = out_dir + "/pimcheck-smoke.json";
    if (write_file(json_path, json.str())) {
        std::printf("smoke report: %s\n", json_path.c_str());
    }
    const std::string prom_path = out_dir + "/pimcheck-metrics.prom";
    if (write_file(prom_path, telemetry::to_prometheus(metrics))) {
        std::printf("smoke metrics: %s\n", prom_path.c_str());
    }

    std::printf("smoke: %s (%zu baseline states explored)\n",
                ok ? "PASS" : "FAIL", baseline_states);
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    check::ExploreOptions options;
    std::string replay_spec;
    std::string backward_target;
    std::string forced_fault;
    std::string out_dir = ".";
    std::size_t determinism_repeats = 0;
    bool scenario_set = false;
    bool max_runs_set = false;
    bool max_depth_set = false;
    bool smoke = false;
    bool replay = false;
    bool backward = false;
    bool determinism = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pimcheck: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scenario") {
            options.scenario = next();
            scenario_set = true;
        } else if (arg == "--mutate") {
            options.mutation = next();
        } else if (arg == "--backward") {
            backward = true;
            backward_target = next();
        } else if (arg == "--threads") {
            options.threads = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--time-budget") {
            options.time_budget_seconds = std::atof(next());
        } else if (arg == "--max-runs") {
            options.max_runs = static_cast<std::size_t>(std::atoll(next()));
            max_runs_set = true;
        } else if (arg == "--max-depth") {
            options.max_depth = static_cast<std::size_t>(std::atoll(next()));
            max_depth_set = true;
        } else if (arg == "--children") {
            options.children_per_run = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--checkpoint-ms") {
            options.checkpoint_every = std::atoll(next()) * sim::kMillisecond;
        } else if (arg == "--seed") {
            options.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--stop-at-first") {
            options.stop_at_first_violation = true;
        } else if (arg == "--replay") {
            replay = true;
            replay_spec = next();
        } else if (arg == "--forced-fault") {
            forced_fault = next();
        } else if (arg == "--determinism-check") {
            determinism = true;
            determinism_repeats = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            std::printf("scenarios:\n");
            for (const std::string& name : check::scenario_names()) {
                std::printf("  %s\n", name.c_str());
            }
            std::printf("mutations:\n");
            for (const std::string& name : check::known_mutations()) {
                std::printf("  %s%s\n", name.c_str(),
                            check::mutation_requires_search(name)
                                ? " (loss-dependent)"
                                : "");
            }
            std::printf("backward targets:\n");
            for (const std::string& name : check::backward_targets()) {
                std::printf("  %s (scenario %s)\n", name.c_str(),
                            check::default_scenario_for_target(name).c_str());
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "pimcheck: unknown option '%s'\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (backward) {
        const auto& targets = check::backward_targets();
        if (std::find(targets.begin(), targets.end(), backward_target) ==
            targets.end()) {
            std::fprintf(stderr, "pimcheck: unknown target '%s' (see --list)\n",
                         backward_target.c_str());
            return 2;
        }
        if (!scenario_set) {
            options.scenario = check::default_scenario_for_target(backward_target);
        }
    }
    const auto& scenarios = check::scenario_names();
    if (std::find(scenarios.begin(), scenarios.end(), options.scenario) ==
        scenarios.end()) {
        std::fprintf(stderr, "pimcheck: unknown scenario '%s' (see --list)\n",
                     options.scenario.c_str());
        return 2;
    }
    if (!options.mutation.empty()) {
        const auto& mutations = check::known_mutations();
        if (std::find(mutations.begin(), mutations.end(), options.mutation) ==
            mutations.end()) {
            std::fprintf(stderr, "pimcheck: unknown mutation '%s' (see --list)\n",
                         options.mutation.c_str());
            return 2;
        }
    }

    if (smoke) return run_smoke(options, out_dir);
    if (replay) return run_replay(options, replay_spec, forced_fault, out_dir);
    if (determinism) return run_determinism_check(options, determinism_repeats);
    if (backward) {
        check::BackwardOptions bo;
        bo.scenario = options.scenario;
        bo.mutation = options.mutation;
        bo.target = backward_target;
        if (max_runs_set) bo.max_replays = options.max_runs;
        if (max_depth_set) bo.max_depth = options.max_depth;
        bo.time_budget_seconds = options.time_budget_seconds;
        bo.checkpoint_every = options.checkpoint_every;
        return run_backward(bo, out_dir);
    }

    const check::ExploreReport report = check::explore(options);
    print_report(options, report, out_dir);
    if (options.mutation.empty()) {
        return report.clean() ? 0 : 1;
    }
    // With a seeded bug enabled, the search is expected to catch it.
    return report.violating_runs > 0 ? 0 : 1;
}
