// pimcheck: systematic state-space checker for the PIM-SM stack.
//
// Explores a scripted scenario under controlled nondeterminism — every
// same-instant event ordering, single-frame loss and fault placement is a
// decision point (see src/check) — and evaluates protocol invariant
// oracles on every branch. Failing branches are shrunk to a minimal set
// of forced choices and emitted as a replayable pimsim script plus a
// decoded packet trace.
//
//   pimcheck                          explore the walkthrough scenario
//   pimcheck --scenario rp-failover   explore the §3.9 failover scenario
//   pimcheck --mutate no-rp-bit-prune expect the seeded bug to be caught
//   pimcheck --replay 17:1,42:2       re-run one branch and show verdicts
//   pimcheck --smoke                  CI gate: baseline clean + both
//                                     seeded mutations caught (exit 1 if not)
//
// Exit status: 0 when the run matches expectations (no violations without
// --mutate; at least one caught violation with --mutate), 1 otherwise,
// 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/explorer.hpp"

namespace {

using namespace pimlib;

void usage() {
    std::printf(
        "usage: pimcheck [options]\n"
        "  --scenario NAME     walkthrough | rp-failover | lan-assert |\n"
        "                      bsr-failover (default walkthrough)\n"
        "  --mutate NAME       enable a seeded bug: skip-spt-bit-handshake |\n"
        "                      no-rp-bit-prune | assert-loser-keeps-forwarding |\n"
        "                      stale-rp-set-after-bsr-failover\n"
        "  --time-budget SECS  wall-clock budget for the search (default 50)\n"
        "  --max-runs N        cap on explored branches (default 100000)\n"
        "  --max-depth N       forced choices per branch (default 3)\n"
        "  --children N        sampled child branches per run (default 800)\n"
        "  --checkpoint-ms N   MRIB hash cadence in sim ms (default 1)\n"
        "  --seed N            frontier sampling seed (default 1)\n"
        "  --stop-at-first     end the search at the first violation\n"
        "  --replay SPEC       run the single branch SPEC (e.g. \"17:1,42:2\")\n"
        "  --forced-fault L    apply fault candidate L unconditionally (with\n"
        "                      --replay)\n"
        "  --out DIR           where counterexample files go (default .)\n"
        "  --list              print scenarios and mutations\n"
        "  --smoke             CI gate (clean baselines + every mutation caught)\n");
}

bool write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) return false;
    out << content;
    return static_cast<bool>(out);
}

std::string save_counterexample(const std::string& dir, const std::string& scenario,
                                const std::string& mutation, std::size_t index,
                                const check::Counterexample& ce) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best effort; write reports
    const std::string base = dir + "/pimcheck-" + scenario +
                             (mutation.empty() ? "" : "-" + mutation) + "-" +
                             std::to_string(index);
    if (!write_file(base + ".pimsim", ce.script)) {
        std::fprintf(stderr, "pimcheck: cannot write %s.pimsim\n", base.c_str());
        return {};
    }
    (void)write_file(base + ".trace", ce.trace_dump);
    if (!ce.provenance_dump.empty()) {
        (void)write_file(base + ".provenance.json", ce.provenance_dump);
    }
    return base;
}

void print_report(const check::ExploreOptions& options,
                  const check::ExploreReport& report, const std::string& out_dir) {
    std::printf("scenario %s%s%s: %zu runs, %zu distinct MRIB states, "
                "%zu violating branch(es), %.1fs%s\n",
                options.scenario.c_str(),
                options.mutation.empty() ? "" : " --mutate ",
                options.mutation.c_str(), report.runs, report.deduped_states,
                report.violating_runs, report.elapsed_seconds,
                report.frontier_exhausted ? " (frontier exhausted)" : "");
    for (std::size_t i = 0; i < report.counterexamples.size(); ++i) {
        const check::Counterexample& ce = report.counterexamples[i];
        std::printf("  counterexample %zu: choices [%s]\n", i,
                    check::format_choices(ce.choices).c_str());
        for (const check::Violation& v : ce.violations) {
            std::printf("    %s: %s\n", v.oracle.c_str(), v.detail.c_str());
        }
        if (!ce.provenance_summary.empty()) {
            std::printf("    drops: %s\n", ce.provenance_summary.c_str());
        }
        const std::string base =
            save_counterexample(out_dir, options.scenario, options.mutation, i, ce);
        if (!base.empty()) {
            std::printf("    replay script: %s.pimsim  trace: %s.trace\n",
                        base.c_str(), base.c_str());
            if (!ce.provenance_dump.empty()) {
                std::printf("    post-mortem: %s.provenance.json\n", base.c_str());
            }
        }
    }
}

int run_replay(const check::ExploreOptions& options, const std::string& spec,
               const std::string& forced_fault, const std::string& out_dir) {
    const auto choices = check::parse_choices(spec);
    if (!choices) {
        std::fprintf(stderr, "pimcheck: bad --replay spec '%s'\n", spec.c_str());
        return 2;
    }
    check::RunConfig cfg;
    cfg.choices = *choices;
    cfg.mutation = options.mutation;
    cfg.forced_fault = forced_fault;
    cfg.collect_trace = true;
    cfg.collect_provenance = true;
    cfg.watchdog = true;
    cfg.checkpoint_every = options.checkpoint_every;
    const check::RunResult result = check::run_scenario(options.scenario, cfg);
    std::printf("replayed branch [%s]: %zu events to t=%.3fs, %zu state hashes, "
                "clean=%s, converged=%s%s\n",
                spec.c_str(), result.events,
                static_cast<double>(result.end_time) / sim::kSecond,
                result.state_hashes.size(), result.clean ? "yes" : "no",
                result.converged ? "yes" : "no",
                result.choices_applied ? "" : " (WARNING: choices not applied)");
    for (const check::Violation& v : result.violations) {
        std::printf("  violation %s: %s\n", v.oracle.c_str(), v.detail.c_str());
    }
    if (result.violations.empty()) std::printf("  all oracles passed\n");
    if (!result.provenance_summary.empty()) {
        std::printf("  drops: %s\n", result.provenance_summary.c_str());
    }
    if (result.watchdog_count > 0) {
        std::printf("  online watchdogs raised %zu violation(s):\n%s",
                    result.watchdog_count, result.watchdog_report.c_str());
    } else {
        std::printf("  online watchdogs: quiet\n");
    }
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string trace_path = out_dir + "/pimcheck-replay.trace";
    if (write_file(trace_path, result.trace_dump)) {
        std::printf("  trace: %s\n", trace_path.c_str());
    }
    const std::string timeline_path = out_dir + "/pimcheck-replay.timeline.json";
    if (write_file(timeline_path, result.timeline_json)) {
        std::printf("  timeline: %s (chrome trace-event JSON; open in Perfetto)\n",
                    timeline_path.c_str());
    }
    if (!result.watchdog_report.empty()) {
        const std::string wd_path = out_dir + "/pimcheck-replay.watchdog.txt";
        if (write_file(wd_path, result.watchdog_report)) {
            std::printf("  watchdog findings: %s\n", wd_path.c_str());
        }
    }
    if (!result.provenance_dump.empty()) {
        const std::string prov_path = out_dir + "/pimcheck-replay.provenance.json";
        if (write_file(prov_path, result.provenance_dump)) {
            std::printf("  post-mortem: %s\n", prov_path.c_str());
        }
    }
    return result.violations.empty() ? 0 : 1;
}

/// CI gate: every unmutated scenario must survive a bounded search with
/// zero violations, and each seeded mutation must be caught — in the
/// scenario built to exercise its mechanism — with a replayable
/// counterexample.
int run_smoke(check::ExploreOptions base, const std::string& out_dir) {
    bool ok = true;

    base.mutation.clear();
    std::size_t baseline_states = 0;
    for (const std::string& scenario : check::scenario_names()) {
        check::ExploreOptions bo = base;
        bo.scenario = scenario;
        bo.time_budget_seconds = scenario == "walkthrough" ? 20.0 : 8.0;
        const check::ExploreReport report = check::explore(bo);
        print_report(bo, report, out_dir);
        baseline_states += report.deduped_states;
        if (!report.clean()) {
            std::printf("SMOKE FAIL: unmutated %s has violations\n",
                        scenario.c_str());
            ok = false;
        }
    }

    for (const std::string& mutation : check::known_mutations()) {
        check::ExploreOptions mo = base;
        mo.scenario = check::scenario_for_mutation(mutation);
        mo.mutation = mutation;
        mo.time_budget_seconds = 8.0;
        mo.stop_at_first_violation = true;
        const check::ExploreReport report = check::explore(mo);
        print_report(mo, report, out_dir);
        if (report.violating_runs == 0) {
            std::printf("SMOKE FAIL: mutation %s was not caught\n",
                        mutation.c_str());
            ok = false;
        } else if (report.counterexamples.empty()) {
            std::printf("SMOKE FAIL: mutation %s caught but no counterexample "
                        "emitted\n",
                        mutation.c_str());
            ok = false;
        }
    }

    std::printf("smoke: %s (%zu baseline states explored)\n",
                ok ? "PASS" : "FAIL", baseline_states);
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    check::ExploreOptions options;
    std::string replay_spec;
    std::string forced_fault;
    std::string out_dir = ".";
    bool smoke = false;
    bool replay = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pimcheck: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scenario") {
            options.scenario = next();
        } else if (arg == "--mutate") {
            options.mutation = next();
        } else if (arg == "--time-budget") {
            options.time_budget_seconds = std::atof(next());
        } else if (arg == "--max-runs") {
            options.max_runs = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--max-depth") {
            options.max_depth = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--children") {
            options.children_per_run = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--checkpoint-ms") {
            options.checkpoint_every = std::atoll(next()) * sim::kMillisecond;
        } else if (arg == "--seed") {
            options.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--stop-at-first") {
            options.stop_at_first_violation = true;
        } else if (arg == "--replay") {
            replay = true;
            replay_spec = next();
        } else if (arg == "--forced-fault") {
            forced_fault = next();
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            std::printf("scenarios:\n");
            for (const std::string& name : check::scenario_names()) {
                std::printf("  %s\n", name.c_str());
            }
            std::printf("mutations:\n");
            for (const std::string& name : check::known_mutations()) {
                std::printf("  %s\n", name.c_str());
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "pimcheck: unknown option '%s'\n", arg.c_str());
            usage();
            return 2;
        }
    }

    const auto& scenarios = check::scenario_names();
    if (std::find(scenarios.begin(), scenarios.end(), options.scenario) ==
        scenarios.end()) {
        std::fprintf(stderr, "pimcheck: unknown scenario '%s' (see --list)\n",
                     options.scenario.c_str());
        return 2;
    }
    if (!options.mutation.empty()) {
        const auto& mutations = check::known_mutations();
        if (std::find(mutations.begin(), mutations.end(), options.mutation) ==
            mutations.end()) {
            std::fprintf(stderr, "pimcheck: unknown mutation '%s' (see --list)\n",
                         options.mutation.c_str());
            return 2;
        }
    }

    if (smoke) return run_smoke(options, out_dir);
    if (replay) return run_replay(options, replay_spec, forced_fault, out_dir);

    const check::ExploreReport report = check::explore(options);
    print_report(options, report, out_dir);
    if (options.mutation.empty()) {
        return report.clean() ? 0 : 1;
    }
    // With a seeded bug enabled, the search is expected to catch it.
    return report.violating_runs > 0 ? 0 : 1;
}
