// Figure 5: switching from the shared (RP) tree to the shortest-path tree,
// with per-packet latency measurements showing why a receiver would switch
// (§1.3: "for interactive applications where low latency is critical, it is
// desirable to use the shortest-path trees").
//
// Topology (delays in ms / unicast metrics chosen so that A — the
// receiver's DR — is the divergence point between the shared tree and the
// SPT, and the source→RP path avoids A):
//
//   receiver — LAN — A ——(2ms,m3)—— B ——(2ms)—— D — LAN — source
//                    |               |
//                 (10ms,m4)      (10ms,m1)
//                    |               |
//                    C (RP) —(10ms)— Y —(10ms)— X
//
// On the shared tree, data travels D→B→X→Y→C(RP)→A (~42 ms); the SPT is
// D→B→A (~4 ms). The example streams packets under the "never switch"
// policy and again under the threshold policy, printing per-packet latency
// so the switchover moment is visible.
#include <cstdio>

#include "scenario/stacks.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

struct World {
    topo::Network net;
    topo::Router *a, *b, *d, *x, *y, *c;
    topo::Host *receiver, *source;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> pim;

    explicit World(pim::SptPolicy policy) {
        a = &net.add_router("A");
        b = &net.add_router("B");
        d = &net.add_router("D");
        x = &net.add_router("X");
        y = &net.add_router("Y");
        c = &net.add_router("C");
        auto& rlan = net.add_lan({a});
        receiver = &net.add_host("receiver", rlan);
        net.add_link(*a, *b, 2 * sim::kMillisecond, /*metric=*/3);
        net.add_link(*b, *d, 2 * sim::kMillisecond, 1);
        net.add_link(*b, *x, 10 * sim::kMillisecond, 1);
        net.add_link(*x, *y, 10 * sim::kMillisecond, 1);
        net.add_link(*y, *c, 10 * sim::kMillisecond, 1);
        net.add_link(*a, *c, 10 * sim::kMillisecond, /*metric=*/4);
        auto& slan = net.add_lan({d});
        source = &net.add_host("source", slan);
        routing = std::make_unique<unicast::OracleRouting>(net);
        net.telemetry().set_tracing(true); // record events + causal spans
        scenario::StackConfig config;
        config.igmp.query_interval = 10 * sim::kSecond;
        config.igmp.membership_timeout = 25 * sim::kSecond;
        pim = std::make_unique<scenario::PimSmStack>(net, config.scaled(0.01));
        pim->set_rp(kGroup, {c->router_id()});
        pim->set_spt_policy(policy);
        net.run_for(200 * sim::kMillisecond);
        pim->host_agent(*receiver).join(kGroup);
        net.run_for(300 * sim::kMillisecond);
    }

    void stream_and_report(const char* label, int packets) {
        receiver->clear_received();
        std::vector<sim::Time> sent_at;
        for (int i = 0; i < packets; ++i) {
            net.simulator().schedule(i * 50 * sim::kMillisecond, [this, &sent_at] {
                sent_at.push_back(net.simulator().now());
                source->send_data(kGroup);
            });
        }
        net.run_for(packets * 50 * sim::kMillisecond + sim::kSecond);
        std::printf("\n%s\n", label);
        std::printf("  pkt  latency_ms\n");
        for (const auto& rec : receiver->received()) {
            const std::size_t i = static_cast<std::size_t>(rec.seq) - 1;
            if (i < sent_at.size()) {
                std::printf("  %-4llu %.1f\n",
                            static_cast<unsigned long long>(rec.seq),
                            static_cast<double>(rec.at - sent_at[i]) /
                                static_cast<double>(sim::kMillisecond));
            }
        }
        std::printf("  delivered %zu/%d, duplicates %zu\n",
                    receiver->received_count(kGroup), packets,
                    receiver->duplicate_count());
    }
};

} // namespace

int main() {
    std::printf("== Policy: stay on the RP tree indefinitely (§3.3 option) ==\n");
    {
        World w(pim::SptPolicy::never());
        w.stream_and_report("all packets ride the shared tree (long path via RP):", 8);
    }

    std::printf("\n== Policy: switch after 3 packets within a window ==\n");
    {
        World w(pim::SptPolicy::threshold(3, 10 * sim::kSecond));
        w.stream_and_report(
            "first packets ride the shared tree; after the switch the SPT\n"
            "bit machinery hands over losslessly and latency drops:",
            8);
        // Show the Fig. 5 end state: A (the divergence point, where the
        // shared iif toward C differs from the SPT iif toward B) pruned the
        // source off the RP tree with an RP-bit prune.
        auto* sg_a = w.pim->pim_at(*w.a).cache().find_sg(w.source->address(), kGroup);
        if (sg_a != nullptr) {
            std::printf("\nA's state after the switch: %s\n", sg_a->describe().c_str());
        }
        auto* sg_c = w.pim->pim_at(*w.c).cache().find_sg(w.source->address(), kGroup);
        if (sg_c != nullptr) {
            std::printf("RP's (S,G) after A's RP-bit prune: %s\n",
                        sg_c->describe().c_str());
        }

        // The event log reconstructs the SPT-bit handshake in causal order:
        // A initiates the switch and joins the source, the SPT bit flips
        // when data arrives on the new iif, then the RP-bit prune takes the
        // source off the shared tree.
        std::printf("\nSPT handshake event ordering:\n%s",
                    w.net.telemetry()
                        .events()
                        .dump([](const telemetry::Event& e) {
                            return e.type == telemetry::EventType::kSptSwitchStarted ||
                                   e.type == telemetry::EventType::kSptBitSet ||
                                   e.type == telemetry::EventType::kRpBitPrune;
                        })
                        .c_str());
        std::printf("\nspan-derived latencies:\n");
        for (const auto& span : w.net.telemetry().spans().completed()) {
            std::printf("  %-14s %-28s %6.1f ms\n", span.kind.c_str(),
                        span.key.c_str(),
                        static_cast<double>(span.latency()) / sim::kMillisecond);
        }
    }
    return 0;
}
