// §3.9: multiple rendezvous points and RP failure. Senders register with
// every RP; receivers join one and fail over when RP-reachability messages
// stop arriving. This example kills the primary RP mid-stream and shows the
// receiver resuming on the alternate.
#include <cstdio>

#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

int main() {
    const net::GroupAddress group{net::Ipv4Address(224, 1, 1, 1)};

    // receiver—A—B—C(RP1), B—E(RP2), B—D—source
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& c = net.add_router("C");
    auto& d = net.add_router("D");
    auto& e = net.add_router("E");
    auto& rlan = net.add_lan({&a});
    auto& receiver = net.add_host("receiver", rlan);
    net.add_link(a, b);
    net.add_link(b, c);
    net.add_link(b, d);
    net.add_link(b, e);
    auto& slan = net.add_lan({&d});
    auto& source = net.add_host("source", slan);
    unicast::OracleRouting routing(net);
    net.telemetry().set_tracing(true); // record events + causal spans

    scenario::StackConfig config;
    config.igmp.query_interval = 10 * sim::kSecond;
    config.igmp.membership_timeout = 25 * sim::kSecond;
    scenario::PimSmStack pim(net, config.scaled(0.01));
    pim.set_rp(group, {c.router_id(), e.router_id()}); // ordered RP list
    pim.set_spt_policy(pim::SptPolicy::never());       // stay on the RP tree

    net.run_for(200 * sim::kMillisecond);
    pim.host_agent(receiver).join(group);
    net.run_for(300 * sim::kMillisecond);

    auto current_rp = [&]() -> std::string {
        auto* wc = pim.pim_at(a).cache().find_wc(group);
        if (wc == nullptr) return "(none)";
        if (wc->source_or_rp() == c.router_id()) return "C (primary)";
        if (wc->source_or_rp() == e.router_id()) return "E (alternate)";
        return wc->source_or_rp().to_string();
    };

    std::printf("receiver's DR is using RP: %s\n", current_rp().c_str());

    // Stream continuously; kill the primary RP partway through.
    source.send_stream(group, 40, 100 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    std::printf("t=%.1fs delivered=%zu  (both RPs know the source: C=%zu, E=%zu)\n",
                static_cast<double>(net.simulator().now()) / sim::kSecond,
                receiver.received_count(group),
                pim.pim_at(c).active_sources(group).size(),
                pim.pim_at(e).active_sources(group).size());

    std::printf("\n*** failing the link to the primary RP ***\n");
    net.find_link(b, c)->set_up(false);
    routing.recompute();

    // RP-reachability messages stop; after the RP timeout (0.9 s scaled)
    // the DR joins toward E. Some packets are lost in between — soft state,
    // not ack'd reliability (§1.3 footnote 4).
    for (int i = 0; i < 4; ++i) {
        net.run_for(1 * sim::kSecond);
        std::printf("t=%.1fs delivered=%zu rp=%s\n",
                    static_cast<double>(net.simulator().now()) / sim::kSecond,
                    receiver.received_count(group), current_rp().c_str());
    }

    const std::size_t got = receiver.received_count(group);
    std::printf("\nfinal: %zu/40 delivered (loss window = RP detection time), "
                "%zu duplicates\n",
                got, receiver.duplicate_count());
    std::printf("the receiver resumed on RP E without the source doing anything\n"
                "(§3.9: \"Sources do not need to take special action.\")\n");

    // The telemetry spans measured both healing paths end to end: IGMP
    // report -> first delivery, and RP-failover decision -> first delivery
    // through the alternate RP.
    std::printf("\nspan-derived latencies:\n");
    for (const auto& span : net.telemetry().spans().completed()) {
        std::printf("  %-14s %-28s %6.1f ms\n", span.kind.c_str(), span.key.c_str(),
                    static_cast<double>(span.latency()) / sim::kMillisecond);
    }
    return got >= 25 ? 0 : 1;
}
