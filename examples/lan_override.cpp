// §3.7: PIM routers on multi-access subnetworks. Two downstream routers
// share a transit LAN below one upstream router. When one of them prunes,
// the other must notice the prune on the LAN and send a join to override
// it; periodic joins from one suppress the other's.
#include <cstdio>

#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

int main() {
    const net::GroupAddress group{net::Ipv4Address(224, 1, 1, 1)};

    //        RP — U — transit LAN — {D1 — lan1, D2 — lan2}
    topo::Network net;
    auto& rp = net.add_router("RP");
    auto& u = net.add_router("U");
    auto& d1 = net.add_router("D1");
    auto& d2 = net.add_router("D2");
    net.add_link(rp, u);
    auto& transit = net.add_lan({&u, &d1, &d2});
    auto& lan1 = net.add_lan({&d1});
    auto& r1 = net.add_host("r1", lan1);
    auto& lan2 = net.add_lan({&d2});
    auto& r2 = net.add_host("r2", lan2);
    auto& slan = net.add_lan({&rp});
    auto& source = net.add_host("source", slan);
    unicast::OracleRouting routing(net);

    scenario::StackConfig config;
    config.igmp.query_interval = 10 * sim::kSecond;
    config.igmp.membership_timeout = 25 * sim::kSecond;
    scenario::PimSmStack pim(net, config.scaled(0.01));
    pim.set_rp(group, {rp.router_id()});
    pim.set_spt_policy(pim::SptPolicy::never());

    net.run_for(200 * sim::kMillisecond);
    pim.host_agent(r1).join(group);
    pim.host_agent(r2).join(group);
    net.run_for(300 * sim::kMillisecond);

    const int u_oif = u.ifindex_on(transit).value();
    auto u_serves_lan = [&] {
        auto* wc = pim.pim_at(u).cache().find_wc(group);
        return wc != nullptr && wc->has_oif(u_oif);
    };
    std::printf("both receivers joined; U forwards onto the transit LAN: %s\n",
                u_serves_lan() ? "yes" : "no");

    // Count join/prune traffic for a while: D1 and D2 both refresh the same
    // (*,G) join toward U, but each overhears the other's and suppresses.
    const auto d1_before = pim.pim_at(d1).join_prune_messages_sent();
    const auto d2_before = pim.pim_at(d2).join_prune_messages_sent();
    net.run_for(6 * sim::kSecond);
    std::printf("join/prune messages in 10 refresh periods: D1=%llu D2=%llu "
                "(suppression keeps the sum near 10, not 20)\n",
                static_cast<unsigned long long>(
                    pim.pim_at(d1).join_prune_messages_sent() - d1_before),
                static_cast<unsigned long long>(
                    pim.pim_at(d2).join_prune_messages_sent() - d2_before));

    // r2 leaves: D2 multicasts a prune onto the LAN; D1 overrides with a
    // join before U's delayed prune takes effect.
    std::printf("\nr2 leaves the group...\n");
    pim.host_agent(r2).leave(group);
    net.run_for(2 * sim::kSecond);
    std::printf("U still forwards onto the LAN (D1's override join won): %s\n",
                u_serves_lan() ? "yes" : "no");

    source.send_stream(group, 5, 50 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    std::printf("r1 received %zu/5, r2 received %zu (already left)\n",
                r1.received_count(group), r2.received_count(group));

    // Now r1 leaves too: nobody overrides, the prune takes effect, state
    // dissolves.
    std::printf("\nr1 leaves as well...\n");
    pim.host_agent(r1).leave(group);
    net.run_for(4 * sim::kSecond);
    std::printf("U's (*,G) entry after everyone left: %s\n",
                pim.pim_at(u).cache().find_wc(group) == nullptr ? "gone (soft state)"
                                                                : "still present!");
    return 0;
}
