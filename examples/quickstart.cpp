// Quickstart: the paper's Figure 3 in ~80 lines.
//
// Builds the four-router internet of Fig. 3, runs PIM sparse mode on every
// router, joins a receiver, starts a sender, and narrates how they
// rendezvous through the RP: explicit join toward the RP, a register from
// the sender's DR, and the RP's join back toward the source.
//
//   receiver — LAN — A — B — C (RP)
//                        |
//                        D — LAN — source
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "scenario/stacks.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

int main() {
    const net::GroupAddress group{net::Ipv4Address(224, 1, 1, 1)};

    // 1. Topology.
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& c = net.add_router("C"); // will be the rendezvous point
    auto& d = net.add_router("D");
    auto& receiver_lan = net.add_lan({&a});
    auto& receiver = net.add_host("receiver", receiver_lan);
    net.add_link(a, b);
    net.add_link(b, c);
    net.add_link(b, d);
    auto& source_lan = net.add_lan({&d});
    auto& source = net.add_host("source", source_lan);

    // 2. Unicast routing (PIM is protocol independent: any provider works;
    //    the oracle gives instantly converged shortest paths).
    unicast::OracleRouting routing(net);

    // 3. PIM sparse mode + IGMP on every router, with compressed timers so
    //    the example finishes in milliseconds of wall time.
    scenario::StackConfig config;
    config.igmp.query_interval = 10 * sim::kSecond;
    config.igmp.membership_timeout = 25 * sim::kSecond;
    scenario::PimSmStack pim(net, config.scaled(0.01));
    pim.set_rp(group, {c.router_id()});

    auto dump = [&](const char* when) {
        std::printf("\n=== %s (t=%.0f ms) ===\n", when,
                    static_cast<double>(net.simulator().now()) / sim::kMillisecond);
        for (topo::Router* r : {&a, &b, &c, &d}) {
            auto& cache = pim.pim_at(*r).cache();
            if (cache.size() == 0) {
                std::printf("  %s: no multicast state\n", r->name().c_str());
                continue;
            }
            cache.for_each_wc([&](mcast::ForwardingEntry& e) {
                std::printf("  %s: %s\n", r->name().c_str(), e.describe().c_str());
            });
            cache.for_each_sg([&](mcast::ForwardingEntry& e) {
                std::printf("  %s: %s\n", r->name().c_str(), e.describe().c_str());
            });
        }
    };

    net.run_for(100 * sim::kMillisecond); // PIM queries, DR election
    dump("before anyone joins");

    // 4. Fig. 3 action 1: the receiver joins; A sends a PIM join toward the
    //    RP, instantiating (*,G) state hop by hop.
    pim.host_agent(receiver).join(group);
    net.run_for(200 * sim::kMillisecond);
    dump("after the receiver joined (shared RP tree built)");

    // 5. Fig. 3 actions 2-3: the source transmits; D registers with the RP;
    //    the RP joins toward the source.
    source.send_data(group);
    net.run_for(300 * sim::kMillisecond);
    dump("after the first data packet (register -> RP -> join to source)");

    // 6. Steady state: data flows natively; with the default immediate SPT
    //    policy, A has switched to the source's shortest-path tree.
    source.send_stream(group, 9, 20 * sim::kMillisecond);
    net.run_for(500 * sim::kMillisecond);
    dump("steady state");

    std::printf("\nreceiver got %zu/10 packets, %zu duplicates\n",
                receiver.received_count(group), receiver.duplicate_count());
    std::printf("registers sent: %llu, join/prune messages: %llu\n",
                static_cast<unsigned long long>(
                    net.stats().control_messages("pim-register")),
                static_cast<unsigned long long>(net.stats().control_messages("pim")));
    return receiver.received_count(group) == 10 ? 0 : 1;
}
