// The paper's motivating application (§1.3): a wide-area teleconference —
// a sparse group spanning several domains, a few high-rate senders, many
// receivers. Demonstrates the declarative topology spec, the packet tracer,
// per-source shortest-path trees, and the state/overhead profile that makes
// sparse mode worth it.
#include <cstdio>

#include "scenario/stacks.hpp"
#include "topo/builder.hpp"
#include "trace/tracer.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

// A small "MBone-like" internet: a 4-router wide-area core, five campus
// domains hanging off it, one of them hosting the RP.
constexpr const char* kInternet = R"(
# wide-area core (10ms WAN links)
router core1 core2 core3 core4
link core1 core2 delay=10ms
link core2 core3 delay=10ms
link core3 core4 delay=10ms
link core4 core1 delay=10ms

# campuses: border + campus router + a member LAN each (1ms links)
router border_a campus_a
link core1 border_a delay=1ms
link border_a campus_a delay=1ms
lan lan_a campus_a
host speaker_a lan_a     # conference speaker
host listener_a lan_a

router border_b campus_b
link core2 border_b delay=1ms
link border_b campus_b delay=1ms
lan lan_b campus_b
host speaker_b lan_b     # second speaker
host listener_b lan_b

router border_c campus_c
link core3 border_c delay=1ms
link border_c campus_c delay=1ms
lan lan_c campus_c
host listener_c lan_c

router border_d campus_d
link core4 border_d delay=1ms
link border_d campus_d delay=1ms
lan lan_d campus_d
host listener_d lan_d

# the RP lives at campus E off core2
router border_e rp_router
link core2 border_e delay=1ms
link border_e rp_router delay=1ms
lan lan_e rp_router
host listener_e lan_e
)";

} // namespace

int main() {
    const net::GroupAddress conference{net::Ipv4Address(224, 2, 127, 254)};

    topo::Network net;
    auto topo = topo::TopologyBuilder::parse(net, kInternet);
    unicast::OracleRouting routing(net);

    scenario::StackConfig config;
    config.igmp.query_interval = 10 * sim::kSecond;
    config.igmp.membership_timeout = 25 * sim::kSecond;
    scenario::PimSmStack pim(net, config.scaled(0.01));
    pim.set_rp(conference, {topo.router("rp_router").router_id()});
    // Teleconference = high data rate: switch to SPTs after a few packets.
    pim.set_spt_policy(pim::SptPolicy::threshold(3, 10 * sim::kSecond));

    trace::PacketTracer tracer(net);
    tracer.set_group_filter(conference);

    net.run_for(300 * sim::kMillisecond);

    // Everyone tunes in; the two speakers are also listeners.
    const char* listeners[] = {"speaker_a", "listener_a", "speaker_b", "listener_b",
                               "listener_c", "listener_d", "listener_e"};
    for (const char* name : listeners) {
        pim.host_agent(topo.host(name)).join(conference);
    }
    net.run_for(500 * sim::kMillisecond);

    std::printf("conference joined by %zu hosts; trace of the tree setup:\n",
                std::size(listeners));
    std::printf("%s\n", tracer.dump().substr(0, 1200).c_str());
    tracer.clear();
    tracer.set_enabled(false);

    // Both speakers talk for a while.
    const int packets = 40;
    topo.host("speaker_a").send_stream(conference, packets, 50 * sim::kMillisecond);
    topo.host("speaker_b").send_stream(conference, packets, 50 * sim::kMillisecond);
    net.run_for(packets * 50 * sim::kMillisecond + 2 * sim::kSecond);

    std::printf("\ndelivery (expected %d from each speaker):\n", packets);
    bool all_ok = true;
    for (const char* name : listeners) {
        auto& host = topo.host(name);
        const auto from_a =
            host.received_count_from(topo.host("speaker_a").address(), conference);
        const auto from_b =
            host.received_count_from(topo.host("speaker_b").address(), conference);
        const bool is_a = std::string(name) == "speaker_a";
        const bool is_b = std::string(name) == "speaker_b";
        std::printf("  %-11s from A: %2zu%s  from B: %2zu%s  dups: %zu\n", name,
                    from_a, is_a ? " (self)" : "", from_b, is_b ? " (self)" : "",
                    host.duplicate_count());
        if (!is_a && from_a != static_cast<std::size_t>(packets)) all_ok = false;
        if (!is_b && from_b != static_cast<std::size_t>(packets)) all_ok = false;
        if (host.duplicate_count() != 0) all_ok = false;
    }

    // The sparse-mode profile: who holds state?
    std::printf("\nmulticast state per router (sparse mode touches only the trees):\n");
    for (const auto& router : net.routers()) {
        std::printf("  %-10s %zu entries\n", router->name().c_str(),
                    pim.pim_at(*router).cache().size());
    }
    std::printf("\ncontrol messages: pim=%llu registers=%llu rp-reach=%llu\n",
                static_cast<unsigned long long>(net.stats().control_messages("pim")),
                static_cast<unsigned long long>(
                    net.stats().control_messages("pim-register")),
                static_cast<unsigned long long>(
                    net.stats().control_messages("pim-rp-reach")));
    return all_ok ? 0 : 1;
}
