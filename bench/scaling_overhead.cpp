// Scaling sweep for the paper's §1.2 efficiency claims: "overhead is
// measured in terms of resources consumed in routers and links, i.e. state,
// processing, and bandwidth", as group count and membership density vary.
//
// A fixed random 16-router internet with 8 edge LANs runs the same workload
// under PIM-SM, DVMRP, MOSPF and CBT:
//   - sparse groups: 2 member LANs per group (the paper's target regime);
//   - dense groups: 7 member LANs per group (where flooding is justified).
//
// Usage: scaling_overhead [--packets N] [--telemetry on|off]
//                         [--metrics prom|json] [--overhead-check PCT]
//                         [--monitor-check PCT]
//
//   --telemetry on       enable event/span tracing during the sweep
//   --metrics prom|json  dump the final run's metric registry after the table
//   --overhead-check PCT run the sweep twice (tracing off, then on) and exit
//                        nonzero if tracing costs more than PCT% wall-clock —
//                        the CI gate keeping instrumentation off the hot path
//   --monitor-check PCT  same twice-run gate, but for the always-on observers:
//                        the second sweep attaches a telemetry::TreeMonitor and
//                        check::Watchdog to every stack (tracing stays off in
//                        both), so the delta prices the budgeted tree walks
//                        plus the incremental invariant sweeps
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "check/watchdog.hpp"
#include "scenario/stacks.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/tree_monitor.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

bool g_tracing = false;       // --telemetry on
bool g_observe = false;       // --monitor-check: attach monitor + watchdogs
bool g_profile = false;       // --profile-check: arm the CPU profiler
std::string g_metrics_format; // --metrics prom|json
std::string g_last_metrics;   // registry dump of the most recent run

scenario::StackConfig fast_config() {
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg.igmp.other_querier_timeout = 25 * sim::kSecond;
    cfg.host.query_response_max = 1 * sim::kSecond;
    return cfg.scaled(0.01);
}

struct World {
    topo::Network net;
    std::vector<topo::Router*> routers;
    std::vector<topo::Host*> hosts;
    std::unique_ptr<unicast::OracleRouting> routing;

    World() {
        std::mt19937 rng(424242);
        graph::Graph g =
            graph::random_connected_graph({.nodes = 16, .average_degree = 3.0}, rng);
        for (int i = 0; i < 16; ++i) {
            routers.push_back(&net.add_router("r" + std::to_string(i)));
        }
        for (int u = 0; u < 16; ++u) {
            for (const auto& e : g.neighbors(u)) {
                if (e.to > u) net.add_link(*routers[u], *routers[e.to]);
            }
        }
        for (int idx : graph::sample_nodes(16, 8, rng)) {
            auto& lan = net.add_lan({routers[static_cast<std::size_t>(idx)]});
            hosts.push_back(&net.add_host("h" + std::to_string(idx), lan));
        }
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

struct Row {
    std::uint64_t data_tx = 0;
    std::uint64_t delivered = 0;
    std::uint64_t control = 0;
    std::size_t state = 0;
};

net::GroupAddress group_n(int n) {
    return net::GroupAddress{net::Ipv4Address(224, 5, static_cast<std::uint8_t>(n / 256),
                                              static_cast<std::uint8_t>(n % 256))};
}

template <typename StackT, typename SetupFn, typename StateFn>
Row run(int groups, int members_per_group, int packets, SetupFn setup,
        StateFn state_of) {
    World w;
    w.net.telemetry().set_tracing(g_tracing);
    StackT stack(w.net, fast_config());
    std::unique_ptr<telemetry::TreeMonitor> monitor;
    std::unique_ptr<check::Watchdog> watchdog;
    if (g_observe) {
        auto caches = [&stack](const topo::Router& r) { return stack.cache_of(r); };
        monitor = std::make_unique<telemetry::TreeMonitor>(w.net, caches);
        monitor->start();
        watchdog = std::make_unique<check::Watchdog>(w.net, caches);
        watchdog->start();
    }
    std::mt19937 rng(777);
    // Per group: pick member hosts; host 0 of the group is also the sender.
    std::vector<std::vector<std::size_t>> group_hosts;
    for (int gi = 0; gi < groups; ++gi) {
        auto idx = graph::sample_nodes(static_cast<int>(w.hosts.size()),
                                       members_per_group + 1, rng);
        group_hosts.emplace_back(idx.begin(), idx.end());
        setup(w, stack, group_n(gi));
    }
    w.net.run_for(300 * sim::kMillisecond);
    for (int gi = 0; gi < groups; ++gi) {
        // Members are all but the first pick; the first pick sends.
        for (std::size_t k = 1; k < group_hosts[gi].size(); ++k) {
            stack.host_agent(*w.hosts[group_hosts[gi][k]]).join(group_n(gi));
        }
    }
    w.net.run_for(500 * sim::kMillisecond);
    for (int gi = 0; gi < groups; ++gi) {
        w.hosts[group_hosts[gi][0]]->send_data(group_n(gi)); // warm-up
    }
    w.net.run_for(1 * sim::kSecond);
    w.net.stats().reset_data_counters();

    for (int gi = 0; gi < groups; ++gi) {
        w.hosts[group_hosts[gi][0]]->send_stream(group_n(gi), packets,
                                                 100 * sim::kMillisecond);
    }
    // Measure state mid-stream (it is soft state: it dissolves afterwards).
    w.net.run_for(packets * 100 * sim::kMillisecond);
    Row row;
    for (auto* router : w.routers) row.state += state_of(stack, *router);
    w.net.run_for(2 * sim::kSecond); // drain in-flight deliveries
    row.data_tx = w.net.stats().total_data_packets();
    row.delivered = w.net.stats().data_delivered();
    row.control = w.net.stats().total_control_messages();
    if (!g_metrics_format.empty()) {
        const telemetry::Registry& reg = w.net.telemetry().registry();
        g_last_metrics = g_metrics_format == "json" ? telemetry::to_json(reg)
                                                    : telemetry::to_prometheus(reg);
    }
    return row;
}

bool g_quiet = false; // suppress table rows during --overhead-check timing
void sweep(int packets);

struct AbTiming {
    double min_a = 0.0; // seconds, best off-run
    double min_b = 0.0; // seconds, best on-run
    double ratio = 1.0; // lower-quartile of per-pair B/A ratios
};

/// CPU seconds consumed by this thread — what the overhead budget is
/// actually about. Wall-clock is unusable for a 5% gate on shared CI
/// hardware: co-tenant load and scheduler steal swing adjacent identical
/// runs by 10-20%, while thread CPU time charges only the cycles the sweep
/// itself burned.
double cpu_seconds() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Paired CPU-time comparison of two sweep configurations, interleaved
/// A,B,A,B,... The verdict is the *lower quartile of per-pair B/A ratios*,
/// not the ratio of global minima: frequency drift moves adjacent runs
/// together, so each pair's ratio cancels it. The lower quartile (rather
/// than the median) is the gate's noise stance: timing noise is one-sided —
/// it only ever inflates a pair's ratio — while a real regression lifts
/// every pair, so the quartile still trips on real cost but shrugs off the
/// occasional interrupt-storm invocation that would make a 5% budget a
/// coin flip. `flag` is toggled before each sweep.
AbTiming min_ab_seconds(bool& flag, int packets, int reps) {
    AbTiming t;
    std::vector<double> ratios;
    for (int i = 0; i < reps; ++i) {
        double pair_s[2] = {0.0, 0.0};
        // Alternate which side runs first: thermal/boost decay is monotone
        // within an invocation, so a fixed off-then-on order would charge
        // the drift to the "on" side in every single pair.
        const bool first = (i % 2) != 0;
        for (const bool on : {first, !first}) {
            flag = on;
            // Hiccups (interrupts, page faults) only ever make a run more
            // expensive, so the min of two back-to-back sweeps is a far
            // lower-variance sample of the true cost than a single sweep.
            double side = 0.0;
            for (int rep = 0; rep < 2; ++rep) {
                const double start = cpu_seconds();
                sweep(packets);
                const double s = cpu_seconds() - start;
                if (rep == 0 || s < side) side = s;
            }
            pair_s[on ? 1 : 0] = side;
            double& best = on ? t.min_b : t.min_a;
            if (i == 0 || side < best) best = side;
        }
        if (pair_s[0] > 0) ratios.push_back(pair_s[1] / pair_s[0]);
    }
    if (!ratios.empty()) {
        std::sort(ratios.begin(), ratios.end());
        t.ratio = ratios[ratios.size() / 4];
    }
    return t;
}

Row g_sum; // table mode only: accumulated across rows for the normalized line

void print_row(const char* protocol, int groups, int members, const Row& row) {
    if (g_quiet) return;
    g_sum.data_tx += row.data_tx;
    g_sum.delivered += row.delivered;
    g_sum.control += row.control;
    g_sum.state += row.state;
    const double per = row.delivered == 0 ? 0.0
                                          : static_cast<double>(row.data_tx) /
                                                static_cast<double>(row.delivered);
    std::printf("%-8s %-7d %-8d %-9llu %-10llu %-9.2f %-9llu %-6zu\n", protocol,
                groups, members, static_cast<unsigned long long>(row.data_tx),
                static_cast<unsigned long long>(row.delivered), per,
                static_cast<unsigned long long>(row.control), row.state);
}

void sweep(int packets) {
    // --profile-check drives this through min_ab_seconds, which toggles
    // g_profile before each invocation; pick the change up here so both
    // sides of a pair run the identical code path apart from the profiler.
    prof::set_enabled(g_profile);
    for (int groups : {1, 4, 16}) {
        for (int members : {2, 7}) {
            print_row("PIM-SM", groups, members,
                      run<scenario::PimSmStack>(
                          groups, members, packets,
                          [](World& w, scenario::PimSmStack& s, net::GroupAddress g) {
                              s.set_rp(g, {w.routers[0]->router_id()});
                              s.set_spt_policy(pim::SptPolicy::immediate());
                          },
                          [](scenario::PimSmStack& s, const topo::Router& r) {
                              return s.pim_at(r).cache().size();
                          }));
            print_row("DVMRP", groups, members,
                      run<scenario::DvmrpStack>(
                          groups, members, packets,
                          [](World&, scenario::DvmrpStack&, net::GroupAddress) {},
                          [](scenario::DvmrpStack& s, const topo::Router& r) {
                              return s.dvmrp_at(r).cache().size();
                          }));
            print_row("MOSPF", groups, members,
                      run<scenario::MospfStack>(
                          groups, members, packets,
                          [](World&, scenario::MospfStack&, net::GroupAddress) {},
                          [](scenario::MospfStack& s, const topo::Router& r) {
                              return s.mospf_at(r).cache().size();
                          }));
            print_row("CBT", groups, members,
                      run<scenario::CbtStack>(
                          groups, members, packets,
                          [](World& w, scenario::CbtStack& s, net::GroupAddress g) {
                              s.set_core(g, w.routers[0]->router_id());
                          },
                          [](scenario::CbtStack& s, const topo::Router& r) {
                              std::size_t n = 0;
                              for (int gi = 0; gi < 64; ++gi) {
                                  if (s.cbt_at(r).tree_state(group_n(gi)) != nullptr) ++n;
                              }
                              return n;
                          }));
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    const int packets = bench::flag_value(argc, argv, "--packets", 20);
    g_tracing = bench::flag_string(argc, argv, "--telemetry", "off") == "on";
    g_metrics_format = bench::flag_string(argc, argv, "--metrics", "");
    const int overhead_pct = bench::flag_value(argc, argv, "--overhead-check", -1);

    const int reps = bench::flag_value(argc, argv, "--reps", 3);

    if (overhead_pct >= 0) {
        // Wall-clock the identical deterministic sweep with tracing off and
        // on; everything simulated is the same, so the delta is purely the
        // cost of the instrumentation.
        g_quiet = true;
        const AbTiming t = min_ab_seconds(g_tracing, packets, reps);
        const double pct = (t.ratio - 1.0) * 100.0;
        std::printf("{\"telemetry_off_s\":%.3f,\"telemetry_on_s\":%.3f,"
                    "\"overhead_pct\":%.1f,\"budget_pct\":%d}\n",
                    t.min_a, t.min_b, pct, overhead_pct);
        if (pct > overhead_pct) {
            std::fprintf(stderr,
                         "scaling_overhead: telemetry overhead %.1f%% exceeds "
                         "the %d%% budget\n",
                         pct, overhead_pct);
            return 1;
        }
        return 0;
    }

    const int profile_pct = bench::flag_value(argc, argv, "--profile-check", -1);
    if (profile_pct >= 0) {
        // The compiled-in-but-disabled budget. The disabled hot path is one
        // relaxed atomic load + branch per PROF_ZONE — too cheap for a
        // wall-clock A/B to resolve above scheduler noise — so the gate is
        // exact arithmetic instead: (zone entries the sweep executes, counted
        // by one enabled run) x (calibrated per-entry cost of the disabled
        // path, measured by prof::calibrate) against the sweep's disabled
        // CPU seconds. The interleaved-pair A/B (same discipline as
        // --overhead-check) prices the *enabled* profiler and is reported
        // alongside, informationally.
        g_quiet = true;

        // (1) Exact zone-entry count for one sweep, from one enabled run.
        g_profile = true;
        sweep(packets);
        g_profile = false;
        prof::set_enabled(false);
        const std::uint64_t entries = prof::snapshot().total_entries;
        prof::reset();

        // (2) Calibrated per-entry cost of the disabled fast path.
        const prof::Calibration cal = prof::calibrate();

        // (3) CPU seconds of the profiler-disabled sweep, min of 3.
        double base_s = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            const double start = cpu_seconds();
            sweep(packets);
            const double s = cpu_seconds() - start;
            if (rep == 0 || s < base_s) base_s = s;
        }
        const double disabled_cost_s =
            static_cast<double>(entries) * cal.disabled_zone_ns / 1e9;
        const double pct = base_s > 0 ? disabled_cost_s / base_s * 100.0 : 0.0;

        // (4) Informational: enabled-vs-disabled interleaved pairs.
        const AbTiming t = min_ab_seconds(g_profile, packets, reps);
        prof::set_enabled(false);
        const double enabled_pct = (t.ratio - 1.0) * 100.0;

        std::printf(
            "{\"zone_entries\":%llu,\"disabled_zone_ns\":%.3f,"
            "\"clock_read_ns\":%.3f,\n"
            " \"sweep_cpu_s\":%.3f,\"disabled_overhead_pct\":%.4f,"
            "\"budget_pct\":%d,\n"
            " \"enabled_overhead_pct\":%.1f,\"profiler_off_s\":%.3f,"
            "\"profiler_on_s\":%.3f}\n",
            static_cast<unsigned long long>(entries), cal.disabled_zone_ns,
            cal.clock_read_ns, base_s, pct, profile_pct, enabled_pct, t.min_a,
            t.min_b);
        if (entries == 0) {
            std::fprintf(stderr, "scaling_overhead: enabled run entered no "
                                 "zones — the sweep is not instrumented\n");
            return 1;
        }
        if (pct > profile_pct) {
            std::fprintf(stderr,
                         "scaling_overhead: compiled-in-but-disabled profiler "
                         "costs %.4f%% CPU, over the %d%% budget\n",
                         pct, profile_pct);
            return 1;
        }
        return 0;
    }

    const int monitor_pct = bench::flag_value(argc, argv, "--monitor-check", -1);
    if (monitor_pct >= 0) {
        // Same discipline as --overhead-check, but the delta prices the
        // always-on observers: tree-monitor walk ticks plus watchdog sweeps,
        // gap tracking, and per-packet stream accounting.
        g_quiet = true;
        const AbTiming t = min_ab_seconds(g_observe, packets, reps);
        const double pct = (t.ratio - 1.0) * 100.0;
        std::printf("{\"observers_off_s\":%.3f,\"observers_on_s\":%.3f,"
                    "\"overhead_pct\":%.1f,\"budget_pct\":%d}\n",
                    t.min_a, t.min_b, pct, monitor_pct);
        if (pct > monitor_pct) {
            std::fprintf(stderr,
                         "scaling_overhead: monitor+watchdog overhead %.1f%% "
                         "exceeds the %d%% budget\n",
                         pct, monitor_pct);
            return 1;
        }
        return 0;
    }

    std::printf("# Scaling sweep (16 routers, 8 edge LANs, %d packets/sender):\n",
                packets);
    std::printf("# sparse groups have 2 member LANs, dense groups 7 (of 8).\n");
    std::printf("%-8s %-7s %-8s %-9s %-10s %-9s %-9s %-6s\n", "proto", "groups",
                "members", "data_tx", "delivered", "tx/deliv", "control", "state");
    sweep(packets);
    std::printf(
        "# Expected shape (§1.2): for sparse groups, PIM-SM and CBT keep state\n"
        "# and data transmissions proportional to the tree, while DVMRP's\n"
        "# broadcast-and-prune instantiates state at every router and touches\n"
        "# every link periodically; for dense groups the gap narrows — dense-\n"
        "# mode flooding is \"warranted\" when most links lead to receivers.\n");
    if (!g_last_metrics.empty()) {
        std::printf("# --- telemetry registry of the final run (%s) ---\n%s",
                    g_metrics_format.c_str(), g_last_metrics.c_str());
        if (g_metrics_format == "json") std::printf("\n");
    }
    bench::Report norm("scaling_overhead");
    norm.metric("total_control_msgs", static_cast<double>(g_sum.control),
                "msgs", "lower")
        .metric("tx_per_delivery",
                g_sum.delivered == 0 ? 0.0
                                     : static_cast<double>(g_sum.data_tx) /
                                           static_cast<double>(g_sum.delivered),
                "packets", "lower")
        .metric("total_state_entries", static_cast<double>(g_sum.state),
                "entries", "info");
    norm.emit();
    return 0;
}
