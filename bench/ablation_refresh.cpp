// Ablation: the soft-state refresh period (§3.4, §1.3 footnote 4).
//
// "PIM uses periodic refreshes as its primary means of reliability. This
// approach reduces the complexity of the protocol and covers a wide range
// of protocol and network failures in a single simple mechanism. On the
// other hand, it can introduce additional message protocol overhead."
//
// This bench quantifies that tradeoff: sweeping the whole family of PIM
// periodic timers together (join/prune refresh, queries, RP-reachability —
// holdtimes stay at 3x their timer), it measures (a) the steady-state
// control message rate, and (b) how long delivery is interrupted when the
// primary RP silently dies and the receivers' DRs must detect it purely by
// soft state — missing RP-reachability messages (§3.9) — before failing
// over to the alternate RP.
//
// Usage: ablation_refresh
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

struct Run {
    double control_per_sec = 0; // steady-state control messages / sim second
    double recovery_ms = -1;    // delivery gap after the failure
};

Run run_with_refresh(sim::Time refresh) {
    // receiver—A—B—RP1; B—D—source; RP2 hangs off D so that the alternate
    // RP's source path shares no router with the receiver's (dead) shared
    // tree — otherwise the §3.3 oif-copy rule would deliver the new source
    // through B before failover even completes.
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& rp1 = net.add_router("RP1");
    auto& rp2 = net.add_router("RP2");
    auto& d = net.add_router("D");
    auto& rlan = net.add_lan({&a});
    auto& receiver = net.add_host("receiver", rlan);
    net.add_link(a, b);
    net.add_link(b, rp1);
    net.add_link(d, rp2);
    net.add_link(b, d);
    auto& slan = net.add_lan({&d});
    auto& source = net.add_host("source", slan);
    auto& late_source = net.add_host("late_source", slan);
    unicast::OracleRouting routing(net);

    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg = cfg.scaled(0.01);
    // Scale the whole PIM periodic family by refresh/600ms (600 ms is the
    // time-compressed default), keeping holdtimes at 3x their timers.
    const double factor = static_cast<double>(refresh) /
                          static_cast<double>(600 * sim::kMillisecond);
    cfg.pim = cfg.pim.scaled(factor);
    scenario::PimSmStack pim(net, cfg);
    pim.set_rp(kGroup, {rp1.router_id(), rp2.router_id()});
    pim.set_spt_policy(pim::SptPolicy::never());

    net.run_for(200 * sim::kMillisecond);
    pim.host_agent(receiver).join(kGroup);
    net.run_for(400 * sim::kMillisecond);

    // Steady-state control rate over 10 simulated seconds.
    const auto control_before = net.stats().total_control_messages();
    const sim::Time window = 10 * sim::kSecond;
    source.send_stream(kGroup, 100, 100 * sim::kMillisecond);
    net.run_for(window);
    Run result;
    result.control_per_sec =
        static_cast<double>(net.stats().total_control_messages() - control_before) /
        (static_cast<double>(window) / sim::kSecond);

    // Silently kill the primary RP, then have a *new* source appear. Its
    // registers only reach the alternate RP, so the receiver cannot hear it
    // until its DR detects the dead RP by missed reachability messages and
    // re-joins toward RP2 (§3.9). (Established flows are not interrupted by
    // RP death at all — the (S,G) paths don't run through it, §3.10.)
    net.find_link(b, rp1)->set_up(false);
    routing.recompute();
    const sim::Time fail_at = net.simulator().now();
    receiver.clear_received();
    late_source.send_stream(kGroup, 600, 20 * sim::kMillisecond);
    net.run_for(600 * 20 * sim::kMillisecond + 20 * refresh);
    for (const auto& rec : receiver.received()) {
        if (rec.source == late_source.address()) {
            result.recovery_ms = static_cast<double>(rec.at - fail_at) /
                                 static_cast<double>(sim::kMillisecond);
            break;
        }
    }
    return result;
}

} // namespace

int main() {
    std::printf("# Ablation: soft-state refresh period vs overhead and recovery\n");
    std::printf("%-14s %-18s %-14s\n", "refresh_ms", "control_msgs/sec",
                "recovery_ms");
    bench::Report report("ablation_refresh");
    for (sim::Time refresh :
         {150 * sim::kMillisecond, 300 * sim::kMillisecond, 600 * sim::kMillisecond,
          1200 * sim::kMillisecond, 2400 * sim::kMillisecond}) {
        const Run r = run_with_refresh(refresh);
        std::printf("%-14lld %-18.1f %-14.1f\n",
                    static_cast<long long>(refresh / sim::kMillisecond),
                    r.control_per_sec, r.recovery_ms);
        const std::string tag =
            std::to_string(refresh / sim::kMillisecond) + "ms";
        report.metric("control_per_sec_" + tag, r.control_per_sec, "msgs/s",
                      "info");
        report.metric("recovery_ms_" + tag, r.recovery_ms, "ms", "info");
    }
    std::printf("# Expected shape: the control rate falls as the refresh period\n"
                "# grows while the RP-failure outage grows roughly linearly with\n"
                "# it (detection needs ~3 missed RP-reachability messages, §3.9)\n"
                "# — the footnote-4 tradeoff between soft-state overhead and\n"
                "# responsiveness in one table.\n");
    report.emit();
    return 0;
}
