// Pure logic behind bench/runner: parsing the normalized pimbench/1 result
// line every bench prints last (see bench::Report in bench_util.hpp),
// reading committed baseline files, the noise-aware regression comparator,
// and the per-bench history append. Header-only and free of process/exec
// concerns so tests/bench_runner_test.cpp can drive every branch — the
// runner executable (runner.cpp) only adds the popen loop and CLI.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace pimlib::bench::runner {

// --------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Covers exactly what the
// normalized lines, baselines and history files use: objects, arrays,
// strings (with \" \\ \/ \b \f \n \r \t \uXXXX escapes), numbers, bools,
// null. No dependencies; parse failures return nullopt, never throw.

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    // Object entries in source order (duplicate keys keep the last).
    std::vector<std::pair<std::string, JsonValue>> members;

    [[nodiscard]] const JsonValue* find(const std::string& key) const {
        const JsonValue* hit = nullptr;
        for (const auto& [k, v] : members) {
            if (k == key) hit = &v;
        }
        return hit;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    std::optional<JsonValue> parse() {
        auto v = value();
        skip_ws();
        if (!v || pos_ != s_.size()) return std::nullopt;
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
            ++pos_;
        }
    }
    bool eat(char c) {
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool literal(const char* lit) {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<JsonValue> value() {
        skip_ws();
        if (pos_ >= s_.size()) return std::nullopt;
        const char c = s_[pos_];
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string_value();
        if (c == 't' || c == 'f') return bool_value();
        if (c == 'n') {
            if (!literal("null")) return std::nullopt;
            return JsonValue{};
        }
        return number_value();
    }

    std::optional<JsonValue> object() {
        if (!eat('{')) return std::nullopt;
        JsonValue out;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (eat('}')) return out;
        for (;;) {
            auto key = string_value();
            if (!key || !eat(':')) return std::nullopt;
            auto val = value();
            if (!val) return std::nullopt;
            out.members.emplace_back(key->str, std::move(*val));
            if (eat(',')) continue;
            if (eat('}')) return out;
            return std::nullopt;
        }
    }

    std::optional<JsonValue> array() {
        if (!eat('[')) return std::nullopt;
        JsonValue out;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (eat(']')) return out;
        for (;;) {
            auto val = value();
            if (!val) return std::nullopt;
            out.items.push_back(std::move(*val));
            if (eat(',')) continue;
            if (eat(']')) return out;
            return std::nullopt;
        }
    }

    std::optional<JsonValue> string_value() {
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != '"') return std::nullopt;
        ++pos_;
        JsonValue out;
        out.kind = JsonValue::Kind::kString;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.str += c;
                continue;
            }
            if (pos_ >= s_.size()) return std::nullopt;
            const char esc = s_[pos_++];
            switch (esc) {
            case '"': out.str += '"'; break;
            case '\\': out.str += '\\'; break;
            case '/': out.str += '/'; break;
            case 'b': out.str += '\b'; break;
            case 'f': out.str += '\f'; break;
            case 'n': out.str += '\n'; break;
            case 'r': out.str += '\r'; break;
            case 't': out.str += '\t'; break;
            case 'u': {
                if (pos_ + 4 > s_.size()) return std::nullopt;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else return std::nullopt;
                }
                // The files we read are ASCII-safe; encode BMP code points
                // as UTF-8 without surrogate-pair handling.
                if (code < 0x80) {
                    out.str += static_cast<char>(code);
                } else if (code < 0x800) {
                    out.str += static_cast<char>(0xC0 | (code >> 6));
                    out.str += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out.str += static_cast<char>(0xE0 | (code >> 12));
                    out.str += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out.str += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return std::nullopt;
            }
        }
        return std::nullopt;
    }

    std::optional<JsonValue> bool_value() {
        JsonValue out;
        out.kind = JsonValue::Kind::kBool;
        if (literal("true")) {
            out.boolean = true;
            return out;
        }
        if (literal("false")) return out;
        return std::nullopt;
    }

    std::optional<JsonValue> number_value() {
        const std::size_t start = pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
                c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) return std::nullopt;
        JsonValue out;
        out.kind = JsonValue::Kind::kNumber;
        char* end = nullptr;
        const std::string token = s_.substr(start, pos_ - start);
        out.number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return std::nullopt;
        return out;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

inline std::optional<JsonValue> parse_json(const std::string& text) {
    return JsonParser(text).parse();
}

// --------------------------------------------------------------------------
// Normalized results (the pimbench/1 line).

struct Metric {
    double value = 0.0;
    std::string unit;
    std::string better; // "lower" | "higher" | "info"
};

struct BenchResult {
    std::string bench;
    std::vector<std::pair<std::string, Metric>> metrics; // insertion order

    [[nodiscard]] const Metric* find(const std::string& name) const {
        for (const auto& [k, m] : metrics) {
            if (k == name) return &m;
        }
        return nullptr;
    }
};

/// Parses one normalized line. Rejects anything that is not a pimbench/1
/// object with a bench name and a metrics object of finite numbers.
inline std::optional<BenchResult> parse_normalized_line(const std::string& line) {
    auto json = parse_json(line);
    if (!json || json->kind != JsonValue::Kind::kObject) return std::nullopt;
    const JsonValue* schema = json->find("schema");
    if (schema == nullptr || schema->str != "pimbench/1") return std::nullopt;
    const JsonValue* bench = json->find("bench");
    const JsonValue* metrics = json->find("metrics");
    if (bench == nullptr || bench->kind != JsonValue::Kind::kString ||
        metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
        return std::nullopt;
    }
    BenchResult out;
    out.bench = bench->str;
    for (const auto& [name, v] : metrics->members) {
        const JsonValue* value = v.find("value");
        const JsonValue* unit = v.find("unit");
        const JsonValue* better = v.find("better");
        if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
            return std::nullopt;
        }
        Metric m;
        m.value = value->number;
        if (unit != nullptr) m.unit = unit->str;
        m.better = better != nullptr ? better->str : "info";
        out.metrics.emplace_back(name, std::move(m));
    }
    return out;
}

/// Finds the LAST normalized line in a bench's full stdout. Benches print
/// human tables and bespoke JSON above it; the contract is only that the
/// record is a complete line and comes last.
inline std::optional<BenchResult> extract_result(const std::string& stdout_text) {
    std::size_t end = stdout_text.size();
    while (end > 0) {
        std::size_t begin = stdout_text.rfind('\n', end - 1);
        begin = (begin == std::string::npos) ? 0 : begin + 1;
        const std::string line = stdout_text.substr(begin, end - begin);
        if (line.find("\"schema\":\"pimbench/1\"") != std::string::npos) {
            return parse_normalized_line(line);
        }
        if (begin == 0) break;
        end = begin - 1;
    }
    return std::nullopt;
}

// --------------------------------------------------------------------------
// Baselines and the regression gate.

struct BaselineMetric {
    double value = 0.0;
    std::string better;     // "lower" | "higher" — only gated directions
    double tolerance = 0.1; // allowed fractional drift in the bad direction
};

struct Baseline {
    std::string bench;
    std::vector<std::pair<std::string, BaselineMetric>> metrics;
};

inline std::optional<Baseline> parse_baseline(const std::string& text) {
    auto json = parse_json(text);
    if (!json || json->kind != JsonValue::Kind::kObject) return std::nullopt;
    const JsonValue* bench = json->find("bench");
    const JsonValue* metrics = json->find("metrics");
    if (bench == nullptr || metrics == nullptr ||
        metrics->kind != JsonValue::Kind::kObject) {
        return std::nullopt;
    }
    Baseline out;
    out.bench = bench->str;
    for (const auto& [name, v] : metrics->members) {
        const JsonValue* value = v.find("value");
        const JsonValue* better = v.find("better");
        const JsonValue* tolerance = v.find("tolerance");
        if (value == nullptr || better == nullptr) return std::nullopt;
        if (better->str != "lower" && better->str != "higher") {
            return std::nullopt; // baselines hold gated metrics only
        }
        BaselineMetric m;
        m.value = value->number;
        m.better = better->str;
        if (tolerance != nullptr) m.tolerance = tolerance->number;
        out.metrics.emplace_back(name, m);
    }
    return out;
}

struct GateFinding {
    std::string metric;
    double baseline = 0.0;
    double best = 0.0;   // direction-aware best over the N runs
    double limit = 0.0;  // the value the gate allowed
    bool missing = false;
    bool regressed = false;

    [[nodiscard]] std::string to_string() const {
        char buf[256];
        if (missing) {
            std::snprintf(buf, sizeof(buf),
                          "%s: gated metric missing from the run output",
                          metric.c_str());
        } else {
            std::snprintf(buf, sizeof(buf),
                          "%s: best-of-N %.6g vs baseline %.6g (limit %.6g)",
                          metric.c_str(), best, baseline, limit);
        }
        return buf;
    }
};

struct GateReport {
    bool pass = true;
    std::vector<GateFinding> findings; // one per gated metric, pass or fail
};

/// The noise-aware gate. For each baseline metric, take the direction-aware
/// best over the N runs (min for "lower", max for "higher") — transient
/// noise only ever hurts, so best-of-N estimates the true cost — then fail
/// iff the best is still past baseline x (1 ± tolerance). A gated metric
/// absent from every run fails: silently dropping a metric must not read
/// as a pass.
inline GateReport gate(const Baseline& baseline,
                       const std::vector<BenchResult>& runs) {
    GateReport report;
    for (const auto& [name, bm] : baseline.metrics) {
        GateFinding f;
        f.metric = name;
        f.baseline = bm.value;
        bool seen = false;
        for (const BenchResult& run : runs) {
            const Metric* m = run.find(name);
            if (m == nullptr) continue;
            if (!seen) {
                f.best = m->value;
            } else if (bm.better == "lower") {
                f.best = std::min(f.best, m->value);
            } else {
                f.best = std::max(f.best, m->value);
            }
            seen = true;
        }
        if (!seen) {
            f.missing = true;
            f.regressed = true;
        } else if (bm.better == "lower") {
            f.limit = bm.value * (1.0 + bm.tolerance);
            f.regressed = f.best > f.limit;
        } else {
            f.limit = bm.value * (1.0 - bm.tolerance);
            f.regressed = f.best < f.limit;
        }
        if (f.regressed) report.pass = false;
        report.findings.push_back(std::move(f));
    }
    return report;
}

// --------------------------------------------------------------------------
// History: one JSON array per bench, one entry appended per runner
// invocation. Entries carry run metadata so a regression can be walked
// back to the commit that introduced it.

struct RunMeta {
    std::string commit;
    std::string host;
    std::string flags;
    long long timestamp = 0; // seconds since epoch
};

inline std::string history_entry_json(const RunMeta& meta,
                                      const std::vector<BenchResult>& runs) {
    std::string out = "  {\"commit\":\"" + meta.commit + "\",\"host\":\"" +
                      meta.host + "\",\"flags\":\"" + meta.flags +
                      "\",\"timestamp\":" + std::to_string(meta.timestamp) +
                      ",\"runs\":[";
    for (std::size_t r = 0; r < runs.size(); ++r) {
        if (r > 0) out += ',';
        out += "{";
        for (std::size_t i = 0; i < runs[r].metrics.size(); ++i) {
            const auto& [name, m] = runs[r].metrics[i];
            if (i > 0) out += ',';
            char buf[128];
            std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", name.c_str(),
                          m.value);
            out += buf;
        }
        out += "}";
    }
    out += "]}";
    return out;
}

/// Appends `entry` (a JSON object, no trailing newline) to the JSON array
/// in `existing` (the current file contents, possibly empty). Returns the
/// new file contents. Malformed existing content is preserved under a
/// "corrupt" key rather than silently discarded.
inline std::string history_append(const std::string& existing,
                                  const std::string& entry) {
    if (existing.empty()) return "[\n" + entry + "\n]\n";
    auto json = parse_json(existing);
    if (!json || json->kind != JsonValue::Kind::kArray) {
        return "[\n  {\"corrupt\":true},\n" + entry + "\n]\n";
    }
    // Splice before the closing bracket of the existing array text.
    const std::size_t close = existing.rfind(']');
    std::string out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
        out.pop_back();
    }
    const bool was_empty = json->items.empty();
    out += was_empty ? "\n" : ",\n";
    out += entry;
    out += "\n]\n";
    return out;
}

} // namespace pimlib::bench::runner
