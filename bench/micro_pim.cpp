// Engineering microbenchmarks (google-benchmark): the per-packet and
// per-message costs that §1.2 counts as "processing" overhead — message
// codecs, RIB longest-prefix match, forwarding-cache lookup, the data-plane
// fast path, and simulator event throughput.
#include <benchmark/benchmark.h>

#include <random>

#include "mcast/forwarding_cache.hpp"
#include "pim/messages.hpp"
#include "sim/simulator.hpp"
#include "topo/network.hpp"
#include "unicast/oracle_routing.hpp"
#include "unicast/rib.hpp"

namespace {

using namespace pimlib;

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

pim::JoinPrune sample_join_prune(int entries) {
    pim::JoinPrune msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.holdtime_ms = 180000;
    msg.group = kGroup.address();
    for (int i = 0; i < entries; ++i) {
        msg.joins.push_back(pim::AddressEntry{
            net::Ipv4Address(10, 1, static_cast<std::uint8_t>(i), 3),
            pim::EntryFlags{false, false}});
        msg.prunes.push_back(pim::AddressEntry{
            net::Ipv4Address(10, 2, static_cast<std::uint8_t>(i), 3),
            pim::EntryFlags{false, true}});
    }
    return msg;
}

void BM_JoinPruneEncode(benchmark::State& state) {
    const auto msg = sample_join_prune(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(msg.encode());
    }
}
BENCHMARK(BM_JoinPruneEncode)->Arg(1)->Arg(8)->Arg(64);

void BM_JoinPruneDecode(benchmark::State& state) {
    const auto bytes = sample_join_prune(static_cast<int>(state.range(0))).encode();
    for (auto _ : state) {
        benchmark::DoNotOptimize(pim::JoinPrune::decode(bytes));
    }
}
BENCHMARK(BM_JoinPruneDecode)->Arg(1)->Arg(8)->Arg(64);

void BM_RegisterCodec(benchmark::State& state) {
    pim::Register reg;
    reg.group = kGroup.address();
    reg.inner_src = net::Ipv4Address(10, 0, 1, 3);
    reg.inner_ttl = 63;
    reg.inner_payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        const auto bytes = reg.encode();
        benchmark::DoNotOptimize(pim::Register::decode(bytes));
    }
}
BENCHMARK(BM_RegisterCodec)->Arg(64)->Arg(512)->Arg(1400);

void BM_RibLongestPrefixMatch(benchmark::State& state) {
    unicast::Rib rib;
    std::mt19937 rng(1);
    std::uniform_int_distribution<std::uint32_t> addr;
    const int routes = static_cast<int>(state.range(0));
    for (int i = 0; i < routes; ++i) {
        const int len = 8 + (i % 25);
        rib.set_route(unicast::Route{net::Prefix{net::Ipv4Address{addr(rng)}, len}, 1,
                                     net::Ipv4Address(10, 0, 0, 2), 1});
    }
    std::vector<net::Ipv4Address> probes;
    for (int i = 0; i < 256; ++i) probes.emplace_back(addr(rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rib.lookup(probes[i++ & 255]));
    }
}
BENCHMARK(BM_RibLongestPrefixMatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_ForwardingCacheLookup(benchmark::State& state) {
    mcast::ForwardingCache cache;
    const int entries = static_cast<int>(state.range(0));
    std::vector<net::Ipv4Address> sources;
    for (int i = 0; i < entries; ++i) {
        const net::Ipv4Address src(10, 1, static_cast<std::uint8_t>(i / 256),
                                   static_cast<std::uint8_t>(i % 256));
        auto& e = cache.ensure_sg(src, kGroup);
        e.set_iif(0);
        e.pin_oif(1);
        sources.push_back(src);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.find_sg(sources[i++ % sources.size()], kGroup));
    }
}
BENCHMARK(BM_ForwardingCacheLookup)->Arg(16)->Arg(1024)->Arg(16384);

void BM_DataPlaneForward(benchmark::State& state) {
    // One router with an (S,G) entry fanning out to `range` interfaces.
    topo::Network net;
    auto& r = net.add_router("r");
    auto& in_lan = net.add_lan({&r});
    auto& src = net.add_host("src", in_lan);
    const int fanout = static_cast<int>(state.range(0));
    for (int i = 0; i < fanout; ++i) net.add_lan({&r});
    mcast::ForwardingCache cache;
    mcast::DataPlane plane(r, cache);
    auto& sg = cache.ensure_sg(src.address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    for (int i = 1; i <= fanout; ++i) sg.pin_oif(i);

    net::Packet packet;
    packet.src = src.address();
    packet.dst = kGroup.address();
    packet.proto = net::IpProto::kUdp;
    packet.payload.assign(64, 0xAB);
    for (auto _ : state) {
        plane.on_multicast_data(0, packet);
        // Drain the delivery events so the queue does not grow unboundedly.
        net.simulator().run();
    }
}
BENCHMARK(BM_DataPlaneForward)->Arg(1)->Arg(4)->Arg(16);

void BM_SimulatorEventThroughput(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator sim;
        int counter = 0;
        for (int i = 0; i < 1000; ++i) {
            sim.schedule(i, [&counter] { ++counter; });
        }
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_OracleRecompute(benchmark::State& state) {
    topo::Network net;
    std::vector<topo::Router*> routers;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) routers.push_back(&net.add_router("r" + std::to_string(i)));
    for (int i = 1; i < n; ++i) net.add_link(*routers[i - 1], *routers[i]);
    for (int i = 0; i + 4 < n; i += 4) net.add_link(*routers[i], *routers[i + 4]);
    unicast::OracleRouting routing(net);
    for (auto _ : state) {
        routing.recompute();
    }
}
BENCHMARK(BM_OracleRecompute)->Arg(8)->Arg(32)->Arg(128);

} // namespace

BENCHMARK_MAIN();
