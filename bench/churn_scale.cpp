// Membership-churn scale bench: how the sparse-mode architecture holds up
// when the receiver population is large and churning (§1.1, §2.3). Builds a
// transit-stub wide area (GT-ITM style), parks aggregated host banks on
// every stub router, prefills them to the target receiver count, then runs
// Poisson join/leave churn with Zipf group popularity on top while on/off
// senders keep data flowing on the popular groups.
//
// Because a HostBank keeps O(1) state per (bank, group), the simulated
// receiver population scales to 100k+ without 100k host objects: the
// protocol work stays proportional to *group* membership edges (first join /
// last leave per LAN), which is exactly the paper's aggregation argument.
//
// Reported per point (JSON on stdout, wall-clock numbers on stderr so two
// same-seed runs emit byte-identical JSON):
//   - joins/sec sustained by the churn engine
//   - membership high-water mark (prefill + churn)
//   - steady-state control overhead (control msgs/sim-second, second half)
//   - join-to-data latency distribution (first join on a LAN -> first data)
//
// Usage: churn_scale [--receivers N] [--rate R] [--seed S] [--check]
//   --receivers/--rate pin a single sweep point; default sweeps both.
//   --check runs one small point twice and fails unless the run meets
//   sanity floors and both runs emit identical JSON (CI determinism gate).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/stacks.hpp"
#include "unicast/oracle_routing.hpp"
#include "workload/churn.hpp"
#include "workload/topology.hpp"

using namespace pimlib;

namespace {

constexpr double kTimeScale = 0.01; // paper-scale timers compressed 100x
constexpr int kGroups = 32;
constexpr int kSenders = 4; // on/off senders on the top popularity ranks

struct PointResult {
    int receivers = 0;
    double rate = 0;
    double duration_s = 0;
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t saturated = 0;
    std::size_t membership_peak = 0;
    std::size_t membership_end = 0;
    double joins_per_sec = 0;
    double steady_control_per_sec = 0;
    std::vector<double> join_to_data_s;
    std::size_t routers = 0;
    std::size_t banks = 0;
};

/// One full point: fresh network, prefill to `receivers`, churn at `rate`
/// joins/sec for `duration`. Everything is derived from `seed`.
PointResult run_point(std::uint64_t seed, int receivers, double rate,
                      sim::Time duration) {
    PointResult out;
    out.receivers = receivers;
    out.rate = rate;
    out.duration_s = static_cast<double>(duration) / sim::kSecond;

    topo::Network net;
    net.set_seed(seed);
    net.telemetry().set_tracing(false); // spans/events off at this scale

    graph::TransitStubOptions topo_opts;
    topo_opts.transit_domains = 2;
    topo_opts.transit_nodes = 3;
    topo_opts.stub_domains = 3;
    topo_opts.stub_nodes = 3;
    workload::MaterializeOptions mat;
    mat.senders = kSenders;
    std::mt19937 graph_rng(static_cast<std::mt19937::result_type>(seed));
    workload::TransitStubNetwork ts =
        workload::build_transit_stub(net, topo_opts, graph_rng, mat);
    out.routers = ts.routers.size();
    out.banks = ts.bank_hosts.size();

    unicast::OracleRouting routing(net);
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg = cfg.scaled(kTimeScale);
    scenario::PimSmStack stack(net, cfg);
    stack.set_spt_policy(pim::SptPolicy::never()); // shared trees only

    workload::ChurnConfig churn_cfg;
    churn_cfg.seed = seed;
    churn_cfg.joins_per_sec = rate;
    churn_cfg.session.kind = workload::SessionDuration::Kind::kExponential;
    churn_cfg.session.mean = 2 * sim::kSecond;
    churn_cfg.groups = kGroups;
    churn_cfg.zipf_exponent = 1.0;

    // RPs for the whole catalog round-robin across the transit core.
    const std::vector<topo::Router*> core = ts.transit_routers();
    std::vector<std::unique_ptr<workload::HostBank>> banks;
    std::vector<workload::HostBank*> raw;
    // Per-group capacity: one group could in principle absorb a bank's whole
    // prefill share, plus headroom for the churn on top.
    const auto nbanks = static_cast<std::size_t>(out.banks);
    const int per_bank = receivers / static_cast<int>(nbanks) + 1;
    const int capacity = per_bank + 256;
    for (topo::Host* h : ts.bank_hosts) {
        banks.push_back(std::make_unique<workload::HostBank>(
            stack.host_agent(*h), capacity));
        raw.push_back(banks.back().get());
    }
    workload::ChurnEngine engine(net, raw, churn_cfg);
    for (int r = 0; r < kGroups; ++r) {
        stack.set_rp(engine.group(r),
                     {core[static_cast<std::size_t>(r) % core.size()]->router_id()});
    }

    // Prefill: distribute exactly `receivers` standing members over banks,
    // and over the *popular half* of the catalog by the same Zipf weights
    // the churn uses (renormalized). Deterministic (no RNG) — the shares
    // come straight off the sampler's CDF. These members never leave; churn
    // turns the population over on top of them. The unpopular half starts
    // empty on purpose: churn arrivals there cross real 0→1 / 1→0
    // boundaries, so join/prune protocol work scales with the churn rate
    // instead of being fully absorbed by the banks' aggregation.
    workload::ZipfSampler zipf(kGroups, churn_cfg.zipf_exponent);
    constexpr int kPrefillRanks = kGroups / 2;
    const double norm = zipf.cdf(kPrefillRanks - 1);
    std::size_t prefilled = 0;
    for (std::size_t b = 0; b < nbanks; ++b) {
        const int base = receivers / static_cast<int>(nbanks) +
                         (b < static_cast<std::size_t>(receivers) % nbanks ? 1 : 0);
        int assigned = 0;
        double prev_cdf = 0;
        for (int r = 0; r < kPrefillRanks; ++r) {
            const double w = (zipf.cdf(r) - prev_cdf) / norm;
            prev_cdf = zipf.cdf(r);
            const int want = static_cast<int>(w * base);
            if (want <= 0) continue;
            assigned += raw[b]->join(engine.group(r), want);
        }
        if (assigned < base) {
            assigned += raw[b]->join(engine.group(0), base - assigned);
        }
        prefilled += static_cast<std::size_t>(assigned);
    }
    engine.start();

    // Senders cycle half on the most popular (prefilled) ranks and half on
    // the empty tail, so join-to-data gets both steady-tree samples (t=0
    // first joins) and churn-driven ones (trees built on demand mid-run).
    std::vector<std::unique_ptr<workload::OnOffSender>> senders;
    workload::OnOffSenderConfig sender_cfg;
    sender_cfg.on = 2 * sim::kSecond;
    sender_cfg.off = 500 * sim::kMillisecond;
    sender_cfg.interval = 20 * sim::kMillisecond;
    sender_cfg.start = 200 * sim::kMillisecond;
    for (std::size_t i = 0; i < ts.senders.size(); ++i) {
        const int half = static_cast<int>(ts.senders.size()) / 2;
        const int rank = static_cast<int>(i) < half
                             ? static_cast<int>(i)
                             : kPrefillRanks + static_cast<int>(i) - half;
        senders.push_back(std::make_unique<workload::OnOffSender>(
            *ts.senders[i], engine.group(rank), sender_cfg));
        senders.back()->start();
    }

    // Steady-state overhead window: the second half of the run, well past
    // tree construction for the prefilled membership.
    std::uint64_t control_at_mid = 0;
    net.simulator().schedule_at(duration / 2, [&] {
        control_at_mid = net.stats().total_control_messages();
    });

    const auto wall_start = std::chrono::steady_clock::now();
    net.run_for(duration);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();

    out.joins = engine.joins();
    out.leaves = engine.leaves();
    out.saturated = engine.saturated_joins();
    out.membership_peak = prefilled + engine.membership_peak();
    out.membership_end = prefilled + engine.membership();
    out.joins_per_sec = static_cast<double>(out.joins) / out.duration_s;
    const double half_s = out.duration_s / 2;
    out.steady_control_per_sec =
        static_cast<double>(net.stats().total_control_messages() - control_at_mid) /
        half_s;
    out.join_to_data_s = engine.join_to_data_seconds();

    // Wall-clock goes to stderr only: stdout must be identical across
    // same-seed runs.
    std::fprintf(stderr,
                 "churn_scale: receivers=%d rate=%.0f wall=%.2fs (%.0f sim-s/s)\n",
                 receivers, rate, wall_s, out.duration_s / wall_s);
    return out;
}

std::string json_for(const PointResult& p) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"receivers\":%d,\"rate_per_sec\":%.1f,\"duration_s\":%.2f,\n"
        "     \"routers\":%zu,\"banks\":%zu,\n"
        "     \"joins\":%llu,\"leaves\":%llu,\"saturated\":%llu,\n"
        "     \"joins_per_sec\":%.1f,\"membership_peak\":%zu,"
        "\"membership_end\":%zu,\n"
        "     \"steady_control_msgs_per_sec\":%.1f,\n"
        "     \"join_to_data_s\":",
        p.receivers, p.rate, p.duration_s, p.routers, p.banks,
        static_cast<unsigned long long>(p.joins),
        static_cast<unsigned long long>(p.leaves),
        static_cast<unsigned long long>(p.saturated), p.joins_per_sec,
        p.membership_peak, p.membership_end, p.steady_control_per_sec);
    return std::string(buf) + bench::distribution_json(p.join_to_data_s) + "}";
}

/// The normalized pimbench/1 line for the last (largest) point. Only
/// sim-derived values appear — stdout must stay byte-identical across
/// same-seed runs, so wall-clock metrics are excluded by construction.
bench::Report normalized(const PointResult& p) {
    bench::Report norm("churn_scale");
    norm.metric("joins_per_sec", p.joins_per_sec, "joins/s", "higher")
        .metric("steady_control_msgs_per_sec", p.steady_control_per_sec,
                "msgs/s", "lower")
        .metric("join_to_data_p50_s", bench::percentile(p.join_to_data_s, 0.50),
                "s", "lower")
        .metric("join_to_data_p99_s", bench::percentile(p.join_to_data_s, 0.99),
                "s", "lower")
        .metric("membership_peak", static_cast<double>(p.membership_peak),
                "receivers", "info");
    return norm;
}

std::string emit(std::uint64_t seed, const std::vector<PointResult>& points) {
    std::string out = "{\n  \"bench\":\"churn_scale\",\n  \"seed\":" +
                      std::to_string(seed) + ",\n  \"groups\":" +
                      std::to_string(kGroups) + ",\n  \"points\":[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        out += json_for(points[i]);
        out += (i + 1 < points.size()) ? ",\n" : "\n";
    }
    return out + "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    const auto seed = static_cast<std::uint64_t>(
        bench::flag_value(argc, argv, "--seed", 42));

    if (bench::flag_present(argc, argv, "--check")) {
        // CI smoke: one small point, run twice; determinism means the JSON
        // must match byte-for-byte, and the point must clear sanity floors.
        const sim::Time dur = 3 * sim::kSecond;
        const std::string a = emit(seed, {run_point(seed, 2000, 200, dur)});
        const std::string b = emit(seed, {run_point(seed, 2000, 200, dur)});
        std::printf("%s", a.c_str());
        if (a != b) {
            std::fprintf(stderr, "churn_scale: same-seed runs diverged\n");
            return 1;
        }
        const PointResult p = run_point(seed, 2000, 200, dur);
        if (p.joins == 0 || p.membership_peak < 2000 || p.join_to_data_s.empty()) {
            std::fprintf(stderr, "churn_scale: sanity floors not met "
                                 "(joins=%llu peak=%zu samples=%zu)\n",
                         static_cast<unsigned long long>(p.joins),
                         p.membership_peak, p.join_to_data_s.size());
            return 1;
        }
        normalized(p).emit();
        return 0;
    }

    const int pin_receivers = bench::flag_value(argc, argv, "--receivers", 0);
    const double pin_rate = bench::flag_double(argc, argv, "--rate", 0);

    struct Point {
        int receivers;
        double rate;
    };
    std::vector<Point> sweep;
    if (pin_receivers > 0 || pin_rate > 0) {
        sweep.push_back({pin_receivers > 0 ? pin_receivers : 100000,
                         pin_rate > 0 ? pin_rate : 2000});
    } else {
        // Default sweep: receiver count up to the 100k+ target, then churn
        // rate at the full population.
        sweep = {{25000, 1000}, {50000, 1000}, {100000, 1000},
                 {100000, 2000}, {100000, 4000}};
    }

    const sim::Time duration = 10 * sim::kSecond;
    bench::profile_begin(argc, argv);
    std::vector<PointResult> points;
    points.reserve(sweep.size());
    for (const Point& pt : sweep) {
        points.push_back(run_point(seed, pt.receivers, pt.rate, duration));
    }
    bench::profile_end(argc, argv, "churn_scale");
    std::printf("%s", emit(seed, points).c_str());
    normalized(points.back()).emit();
    return 0;
}
