// Fault-convergence distributions (§2.7, §3.4, §3.9).
//
// The paper's robustness argument is that *one* mechanism — periodic
// refresh of all join/prune state, with holdtimes at 3x the refresh
// period — recovers the distribution trees from link failures, router
// crashes, and RP death. This bench injects each fault class mid-stream,
// several trials per class with the fault instant swept across a refresh
// period (recovery depends on where in the timer cycle the fault lands),
// and reports the recovery-time distribution plus the control-message cost
// of each recovery as JSON.
//
// The acceptance bound asserted here: link-cut and RP-failure recovery
// must complete within 3x the join/prune refresh period (the soft-state
// holdtime, §3.6). Exit status is nonzero if any such trial misses the
// bound, so CI can gate on it.
//
// Usage: fault_convergence [--trials N]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/convergence_probe.hpp"
#include "fault/fault_injector.hpp"
#include "provenance/provenance.hpp"
#include "scenario/stacks.hpp"
#include "telemetry/tree_monitor.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};
constexpr double kTimeScale = 0.01; // 60s paper-scale refresh -> 0.6s

/// One assembled network under test:
///
///        receiver--rlan--A--B1--C(RP1)--D--slan--source
///                         \--B2--/      |
///                          (backup)     E(RP2)
///
/// plus a metric-10 detour B1--D so the network stays connected when C
/// (the primary RP and a cut vertex otherwise) crashes.
struct World {
    topo::Network net;
    topo::Router* a = nullptr;
    topo::Router* b1 = nullptr;
    topo::Router* b2 = nullptr;
    topo::Router* c = nullptr;
    topo::Router* d = nullptr;
    topo::Router* e = nullptr;
    topo::Segment* primary = nullptr; // the B1--C link the shared tree uses
    topo::Host* receiver = nullptr;
    topo::Host* source = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> stack;
    std::unique_ptr<fault::FaultInjector> faults;
    std::unique_ptr<fault::ConvergenceProbe> probe;
    std::unique_ptr<provenance::Recorder> recorder;
    std::unique_ptr<telemetry::TreeMonitor> monitor;

    /// `bsr`: learn the RP set dynamically through the bootstrap subsystem
    /// (C and E as candidate BSR/RP, C primary on priority) instead of the
    /// static two-RP list — the rp-crash-bsr fault class measures the full
    /// dynamic recovery chain: BSR timeout, takeover, RP-set republish,
    /// re-home.
    explicit World(bool bsr = false) {
        a = &net.add_router("A");
        b1 = &net.add_router("B1");
        b2 = &net.add_router("B2");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        auto& rlan = net.add_lan({a});
        receiver = &net.add_host("receiver", rlan);
        net.add_link(*a, *b1);
        primary = &net.add_link(*b1, *c);
        net.add_link(*a, *b2, sim::kMillisecond, 2);
        net.add_link(*b2, *c, sim::kMillisecond, 2);
        net.add_link(*c, *d);
        net.add_link(*b1, *d, sim::kMillisecond, 10);
        net.add_link(*d, *e);
        auto& slan = net.add_lan({d});
        source = &net.add_host("source", slan);

        routing = std::make_unique<unicast::OracleRouting>(net);
        faults = std::make_unique<fault::FaultInjector>(net);
        probe = std::make_unique<fault::ConvergenceProbe>(net);
        // Flight recorder: a trial that misses its recovery bound dumps the
        // last packets' per-hop fate instead of just a number.
        recorder = std::make_unique<provenance::Recorder>(
            net.telemetry().registry(), provenance::RecorderConfig{});
        net.set_provenance(recorder.get());
        probe->attach_recorder(recorder.get());

        scenario::StackConfig cfg;
        cfg.igmp.query_interval = 10 * sim::kSecond;
        cfg.igmp.membership_timeout = 25 * sim::kSecond;
        cfg = cfg.scaled(kTimeScale);
        stack = std::make_unique<scenario::PimSmStack>(net, cfg);
        stack->set_spt_policy(pim::SptPolicy::never());
        if (bsr) {
            const net::Prefix all_groups{net::Ipv4Address{224, 0, 0, 0}, 4};
            stack->set_candidate_bsr(*c, 20);
            stack->set_candidate_bsr(*e, 10);
            stack->set_candidate_rp(*c, all_groups, 20);
            stack->set_candidate_rp(*e, all_groups, 10);
        } else {
            stack->set_rp(kGroup, {c->router_id(), e->router_id()});
        }

        // Bound-miss reports carry a tree-health snapshot (depth, stretch,
        // member ports) next to the per-hop drop record: the measure_group
        // walk is on-demand, so the monitor costs nothing between misses.
        monitor = std::make_unique<telemetry::TreeMonitor>(
            net, [this](const topo::Router& r) { return stack->cache_of(r); });
        probe->set_tree_health_source([this](net::GroupAddress g) {
            return monitor->measure_group(g).to_json();
        });
        stack->wire_faults(*faults);

        // Receiver joins; the source streams for the whole run (10 ms data
        // spacing bounds the measurement granularity).
        net.simulator().schedule_at(100 * sim::kMillisecond, [this] {
            stack->host_agent(*receiver).join(kGroup);
        });
        source->send_stream(kGroup, 2000, 10 * sim::kMillisecond,
                            300 * sim::kMillisecond);
    }

    [[nodiscard]] sim::Time refresh() const {
        return stack->pim_at(*a).config().join_prune_interval;
    }

    fault::ConvergenceProbe::Report run(sim::Time fault_at) {
        net.run_for(fault_at + 3 * sim::kSecond);
        return probe->measure(kGroup, {receiver}, fault_at);
    }
};

using Reports = std::vector<fault::ConvergenceProbe::Report>;

struct FaultSummary {
    std::string name;
    bool bounded = false; // recovery must respect the 3x-refresh bound
    Reports reports;
    bool within_bound = true;
    /// Flight-recorder dumps of the trials that missed the bound, captured
    /// before each trial's world was torn down.
    std::vector<std::string> postmortems;
};

/// Sweeps the fault instant across one refresh period starting at 2 s
/// (well into the steady state), one fresh deterministic world per trial.
/// `bound` is the recovery bound for post-mortem capture (0 = unbounded:
/// only an unconverged trial dumps).
void sweep(FaultSummary& fs, int trials, sim::Time bound,
           const std::function<void(World&, sim::Time)>& inject,
           bool bsr = false) {
    for (int i = 0; i < trials; ++i) {
        World world(bsr);
        const sim::Time fault_at =
            2 * sim::kSecond + i * (world.refresh() / trials);
        inject(world, fault_at);
        fs.reports.push_back(world.run(fault_at));
        std::string pm = world.probe->postmortem(fs.reports.back(), bound);
        if (!pm.empty()) fs.postmortems.push_back(std::move(pm));
    }
}

std::string json_for(const FaultSummary& fs, sim::Time bound,
                     telemetry::Registry& registry) {
    std::string out = "    {\"fault\":\"" + fs.name + "\",\"bounded\":" +
                      (fs.bounded ? "true" : "false") + ",\n     \"trials\":[\n";
    std::vector<double> recoveries;
    for (std::size_t i = 0; i < fs.reports.size(); ++i) {
        out += "       " + fs.reports[i].to_json();
        out += (i + 1 < fs.reports.size()) ? ",\n" : "\n";
        if (fs.reports[i].converged) {
            recoveries.push_back(static_cast<double>(fs.reports[i].recovery) /
                                 sim::kSecond);
        }
    }
    // Percentiles come from the shared telemetry histogram the reports were
    // folded into (bucket-interpolated, same series a scraper would see).
    const telemetry::Histogram& hist = registry.histogram(
        "pimlib_fault_recovery_seconds",
        telemetry::Buckets::exponential(0.001, 1.6, 24), {{"fault", fs.name}});
    out += "     ],\n     \"recovery_s\":" +
           bench::distribution_json(stats::summarize(recoveries),
                                    hist.quantile(0.50), hist.quantile(0.90),
                                    hist.quantile(0.99));
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\n     \"bound_s\":%.6f,\"within_bound\":%s}",
                  static_cast<double>(bound) / sim::kSecond,
                  fs.within_bound ? "true" : "false");
    return out + buf;
}

} // namespace

int main(int argc, char** argv) {
    // Clamp so `--trials 0` can't turn the bound check into a vacuous pass.
    const int trials =
        std::max(1, bench::flag_value(argc, argv, "--trials", 5));

    // One registry across all worlds: each trial's report is folded into
    // pimlib_fault_recovery_seconds{fault} so the JSON percentiles below are
    // read back out of the exact series a metrics scraper would see.
    telemetry::Registry registry;

    // The acceptance bound: soft-state holdtime = 3x join/prune refresh.
    const sim::Time refresh =
        static_cast<sim::Time>(60 * sim::kSecond * kTimeScale);
    const sim::Time bound = 3 * refresh;

    std::vector<FaultSummary> summaries;

    // Link cut: the shared tree's B1--C hop dies; unicast reroutes via B2
    // and §3.8 route-change handling re-homes the tree with a triggered
    // join (recovery should be far inside the 3x bound).
    summaries.push_back({"link-cut", true, {}, true, {}});
    sweep(summaries.back(), trials, bound, [](World& w, sim::Time at) {
        w.faults->cut_link_at(at, *w.primary);
    });

    // Transit router crash: B1 drops off the network with all its state;
    // same re-homing path as a link cut, but every segment B1 touched dies
    // at once (one batched topology recomputation).
    summaries.push_back({"transit-crash", true, {}, true, {}});
    sweep(summaries.back(), trials, bound, [](World& w, sim::Time at) {
        w.faults->crash_router_at(at, *w.b1);
    });

    // RP crash: the primary RP dies losing all its state; receivers' DRs
    // time out RP-reachability (§3.9) and re-join toward the alternate RP.
    // Worst case ~ rp_timeout + one refresh tick, still inside 3x refresh.
    summaries.push_back({"rp-crash", true, {}, true, {}});
    sweep(summaries.back(), trials, bound, [](World& w, sim::Time at) {
        w.faults->crash_router_at(at, *w.c);
    });

    // RP crash with a bootstrap-learned RP set (no static list anywhere):
    // recovery now chains the BSR timeout (2.5x the 0.6s bootstrap
    // interval = 1.5s), E's takeover and RP-set republish, and the members'
    // triggered re-join toward E — the whole dynamic path must still land
    // inside the same 3x-refresh soft-state bound.
    summaries.push_back({"rp-crash-bsr", true, {}, true, {}});
    sweep(
        summaries.back(), trials, bound,
        [](World& w, sim::Time at) { w.faults->crash_router_at(at, *w.c); },
        /*bsr=*/true);

    // Segment loss: 30% of frames on the tree's B1--C hop vanish. Not a
    // topology change — soft-state refresh simply rides it out; reported
    // for the distribution, no bound asserted (post-mortem only if a trial
    // never converges at all).
    summaries.push_back({"loss-30pct", false, {}, true, {}});
    sweep(summaries.back(), trials, /*bound=*/0, [](World& w, sim::Time at) {
        w.faults->set_loss_at(at, *w.primary, 0.3);
    });

    bool ok = true;
    for (FaultSummary& fs : summaries) {
        for (const auto& report : fs.reports) {
            fault::ConvergenceProbe::record(report, registry, fs.name);
        }
        if (!fs.bounded) continue;
        for (const auto& report : fs.reports) {
            if (!report.converged || report.recovery > bound) {
                fs.within_bound = false;
                ok = false;
            }
        }
    }

    std::printf("{\n  \"refresh_s\":%.6f,\n  \"bound_s\":%.6f,\n"
                "  \"trials_per_fault\":%d,\n  \"faults\":[\n",
                static_cast<double>(refresh) / sim::kSecond,
                static_cast<double>(bound) / sim::kSecond, trials);
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        std::printf("%s%s\n", json_for(summaries[i], bound, registry).c_str(),
                    i + 1 < summaries.size() ? "," : "");
    }
    std::printf("  ],\n  \"all_within_bound\":%s\n}\n", ok ? "true" : "false");

    bench::Report norm("fault_convergence");
    for (const FaultSummary& fs : summaries) {
        double worst = 0;
        for (const auto& report : fs.reports) {
            if (report.converged) {
                worst = std::max(
                    worst, static_cast<double>(report.recovery) / sim::kSecond);
            }
        }
        norm.metric("recovery_max_s_" + fs.name, worst, "s", "lower");
    }
    norm.metric("all_within_bound", ok ? 1.0 : 0.0, "bool", "higher");
    norm.emit();

    if (!ok) {
        // Auto-emit the flight-recorder post-mortems of the failing trials
        // so the bound miss arrives with per-hop packet fates attached.
        for (const FaultSummary& fs : summaries) {
            for (std::size_t i = 0; i < fs.postmortems.size(); ++i) {
                const std::string path = "fault-convergence-" + fs.name +
                                         "-postmortem-" + std::to_string(i) +
                                         ".json";
                std::ofstream out(path);
                if (out) {
                    out << fs.postmortems[i];
                    std::fprintf(stderr, "fault_convergence: post-mortem %s\n",
                                 path.c_str());
                }
            }
        }
        std::fprintf(stderr,
                     "fault_convergence: recovery exceeded the 3x-refresh "
                     "bound (see JSON above)\n");
        return 1;
    }
    return 0;
}
