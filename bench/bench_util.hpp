// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "graph/center_tree.hpp"
#include "graph/random_graph.hpp"
#include "graph/tree_metrics.hpp"
#include "graph/shortest_path.hpp"
#include "stats/counters.hpp"
#include "telemetry/profiler/profiler.hpp"

namespace pimlib::bench {

/// The normalized result record every bench emits as its LAST stdout line,
/// consumed by bench/runner (history + baseline gate). One line of JSON:
///
///   {"schema":"pimbench/1","bench":"timer_scale","metrics":{
///     "top_speedup":{"value":12.4,"unit":"x","better":"higher"}, ...}}
///
/// `better` tells the regression gate which direction is bad: "lower"
/// (times), "higher" (throughput/speedups), or "info" (recorded in history
/// but never gated — wall-clock-noisy or purely descriptive values).
/// Metric values must be finite; insertion order is preserved so the line
/// is byte-stable for deterministic benches (churn_scale --check diffs its
/// full stdout across same-seed runs).
class Report {
public:
    explicit Report(std::string bench) : bench_(std::move(bench)) {}

    Report& metric(const std::string& name, double value, const std::string& unit,
                   const std::string& better) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"value\":%.9g,\"unit\":\"%s\",\"better\":\"%s\"}",
                      name.c_str(), value, unit.c_str(), better.c_str());
        entries_.emplace_back(buf);
        return *this;
    }

    [[nodiscard]] std::string line() const {
        std::string out = "{\"schema\":\"pimbench/1\",\"bench\":\"" + bench_ +
                          "\",\"metrics\":{";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (i > 0) out += ',';
            out += entries_[i];
        }
        out += "}}";
        return out;
    }

    /// Prints the normalized line to stdout (with trailing newline).
    void emit() const { std::printf("%s\n", line().c_str()); }

private:
    std::string bench_;
    std::vector<std::string> entries_;
};

/// Parses "--trials N" / "--groups N" style integer flags; returns
/// `fallback` when absent.
inline int flag_value(int argc, char** argv, const char* name, int fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
    }
    return fallback;
}

/// Parses "--rate X" style floating-point flags; returns `fallback` when
/// absent.
inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
    }
    return fallback;
}

/// True when the bare flag (e.g. "--check") is present.
inline bool flag_present(int argc, char** argv, const char* name) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return true;
    }
    return false;
}

/// Parses "--metrics prom" style string flags; returns `fallback` when
/// absent.
inline std::string flag_string(int argc, char** argv, const char* name,
                               const char* fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    }
    return fallback;
}

/// Arms the CPU profiler when --profile is present; call before the
/// workload. Pair with profile_end after it.
inline bool profile_begin(int argc, char** argv) {
    if (!flag_present(argc, argv, "--profile")) return false;
    prof::set_enabled(true);
    return true;
}

/// When --profile is armed: stops the profiler, writes collapsed stacks
/// (FlameGraph / speedscope input) to --profile-out (default
/// "<bench>.collapsed") and prints the zone table to stderr — stdout stays
/// reserved for the bench's own JSON.
inline void profile_end(int argc, char** argv, const char* bench) {
    if (!flag_present(argc, argv, "--profile")) return;
    prof::set_enabled(false);
    const prof::Report report = prof::snapshot();
    const std::string fallback = std::string(bench) + ".collapsed";
    const std::string path =
        flag_string(argc, argv, "--profile-out", fallback.c_str());
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string collapsed = prof::to_collapsed(report);
        std::fwrite(collapsed.data(), 1, collapsed.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "profile: wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "profile: cannot write %s\n", path.c_str());
    }
    std::fprintf(stderr, "%s", prof::to_table(report).c_str());
}

/// Nearest-rank percentile over an unsorted sample. NaN when the sample is
/// empty (there is no such statistic), the lone value for a single-sample
/// vector, and `q` is clamped to [0, 1] so a bad quantile can't index past
/// the end.
inline double percentile(std::vector<double> values, double q) {
    if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
    if (values.size() == 1) return values.front();
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const auto i = static_cast<std::size_t>(
        q * (static_cast<double>(values.size()) - 1.0));
    return values[i];
}

/// The JSON object every bench emits for a sample distribution. The
/// percentiles are parameters so callers can source them either from the
/// sorted sample (see the overload below) or from a telemetry histogram
/// (bucket-interpolated, the series a metrics scraper would see).
inline std::string distribution_json(const stats::Summary& s, double p50,
                                     double p90, double p99) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"mean\":%.6f,\"min\":%.6f,\"max\":%.6f,\"stddev\":%.6f,"
                  "\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f,\"count\":%zu}",
                  s.mean, s.min, s.max, s.stddev, p50, p90, p99, s.count);
    return buf;
}

/// distribution_json with percentiles taken from the sample itself. An
/// empty sample emits all-zero fields with "count":0 (percentile() returns
/// NaN there, which %.6f would render as non-JSON "nan").
inline std::string distribution_json(const std::vector<double>& values) {
    if (values.empty()) return distribution_json(stats::Summary{}, 0.0, 0.0, 0.0);
    return distribution_json(stats::summarize(values), percentile(values, 0.50),
                             percentile(values, 0.90), percentile(values, 0.99));
}

/// Dense per-edge flow counter over a fixed graph: resolves (u,v) pairs to
/// compact edge ids once, then counts through the same graph::FlowLoad the
/// live TreeMonitor concentrates on segment ids. Fast enough for the
/// paper-scale sweeps (Fig. 2(b): 500 graphs × 300 groups).
class EdgeFlowCounter {
public:
    explicit EdgeFlowCounter(const graph::Graph& g) : n_(g.node_count()) {
        edge_id_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1);
        int next = 0;
        for (int u = 0; u < n_; ++u) {
            for (const auto& e : g.neighbors(u)) {
                if (e.to < u) continue;
                edge_id_[static_cast<std::size_t>(u) * n_ + e.to] = next;
                edge_id_[static_cast<std::size_t>(e.to) * n_ + u] = next;
                ++next;
            }
        }
    }

    void add(int u, int v, std::size_t count = 1) {
        load_.add(edge_id_[static_cast<std::size_t>(u) * n_ + v], count);
    }

    [[nodiscard]] std::size_t max_flows() const { return load_.max_flows(); }
    [[nodiscard]] const graph::FlowLoad& load() const { return load_; }

private:
    int n_;
    std::vector<int> edge_id_;
    graph::FlowLoad load_;
};

/// Unique edges on the union of parent-walks from `targets` up to the tree
/// root of `spt` (each edge reported once). Linear in path lengths.
inline std::vector<std::pair<int, int>> tree_edges(const graph::ShortestPathTree& spt,
                                                   const std::vector<int>& targets,
                                                   std::vector<int>& visit_stamp,
                                                   int stamp) {
    std::vector<std::pair<int, int>> edges;
    for (int t : targets) {
        int walk = t;
        while (walk != spt.source && visit_stamp[static_cast<std::size_t>(walk)] != stamp) {
            visit_stamp[static_cast<std::size_t>(walk)] = stamp;
            const int parent = spt.parent[static_cast<std::size_t>(walk)];
            if (parent < 0) break; // unreachable
            edges.emplace_back(walk, parent);
            walk = parent;
        }
    }
    return edges;
}

} // namespace pimlib::bench
