// Reproduces the Figure 1 scenario (§1.3): three domains A, B and C attached
// to a wide-area internet, one member of group G in each domain, plus
// member-free stub domains. Compares, packet for packet:
//
//   Fig. 1(a)/(b) — DVMRP: the source's packets are periodically broadcast
//   across the whole internet and pruned back ("periodically, the source's
//   packets will be broadcast throughout the entire internet when the
//   pruned-off branches time out");
//
//   Fig. 1(c) — CBT: one shared tree rooted at a core in domain A; all
//   senders' traffic concentrates on the core path, and B→C packets do not
//   travel the unicast shortest path;
//
//   PIM-SM — explicit joins only touch the distribution tree; receivers
//   switch to shortest-path trees.
//
// Usage: fig1_overhead [--packets N]
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

scenario::StackConfig fast_config() {
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg.igmp.other_querier_timeout = 25 * sim::kSecond;
    cfg.host.query_response_max = 1 * sim::kSecond;
    return cfg.scaled(0.01);
}

/// The Fig. 1 internetwork. Domains A, B, C have one member each; stub
/// domains S1, S2 have routers and hosts but no members.
struct Fig1Net {
    topo::Network net;
    // internet transit ring
    topo::Router* t[4];
    // per-domain border + internal router
    topo::Router *border_a, *internal_a, *border_b, *internal_b, *border_c, *internal_c;
    topo::Router *border_s1, *internal_s1, *border_s2, *internal_s2;
    topo::Host *member_a, *member_b, *member_c;   // the three receivers
    topo::Host *src_a, *src_b, *src_c;            // senders X (A), Y (B), Z' (C)
    std::unique_ptr<unicast::OracleRouting> routing;

    Fig1Net() {
        for (int i = 0; i < 4; ++i) t[i] = &net.add_router("T" + std::to_string(i));
        net.add_link(*t[0], *t[1]);
        net.add_link(*t[1], *t[2]);
        net.add_link(*t[2], *t[3]);
        net.add_link(*t[3], *t[0]);

        auto domain = [&](const std::string& name, topo::Router* transit,
                          topo::Router** border, topo::Router** internal,
                          topo::Host** member, topo::Host** source) {
            *border = &net.add_router("B" + name);
            *internal = &net.add_router("R" + name);
            net.add_link(*transit, **border);
            net.add_link(**border, **internal);
            auto& member_lan = net.add_lan({*internal});
            if (member != nullptr) *member = &net.add_host("member" + name, member_lan);
            if (source != nullptr) {
                auto& src_lan = net.add_lan({*internal});
                *source = &net.add_host("src" + name, src_lan);
            }
        };
        domain("A", t[0], &border_a, &internal_a, &member_a, &src_a);
        domain("B", t[1], &border_b, &internal_b, &member_b, &src_b);
        domain("C", t[2], &border_c, &internal_c, &member_c, &src_c);
        domain("S1", t[3], &border_s1, &internal_s1, nullptr, nullptr);
        domain("S2", t[1], &border_s2, &internal_s2, nullptr, nullptr);
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

struct Result {
    std::string protocol;
    std::uint64_t data_transmissions = 0;   // per-segment data packet crossings
    std::uint64_t delivered = 0;            // member deliveries
    std::size_t segments_touched = 0;       // segments that carried any data
    std::size_t max_flows = 0;              // traffic concentration
    std::uint64_t control = 0;              // control messages total
    std::size_t state_entries = 0;          // multicast entries across routers
    double delay_b_to_c_ms = -1;            // Y→Z latency (Fig. 1(c) concern)
};

template <typename StackT, typename SetupFn, typename StateFn>
Result run(const char* name, SetupFn setup, StateFn state_of, int packets) {
    Fig1Net f;
    StackT stack(f.net, fast_config());
    setup(f, stack);
    f.net.run_for(300 * sim::kMillisecond);

    stack.host_agent(*f.member_a).join(kGroup);
    stack.host_agent(*f.member_b).join(kGroup);
    stack.host_agent(*f.member_c).join(kGroup);
    f.net.run_for(500 * sim::kMillisecond);

    // Warm-up: one packet per sender establishes trees / floods+prunes.
    f.src_a->send_data(kGroup);
    f.src_b->send_data(kGroup);
    f.src_c->send_data(kGroup);
    f.net.run_for(1 * sim::kSecond);
    f.net.stats().reset_data_counters();

    // Steady state: senders in all three domains, spanning several prune
    // lifetimes / refresh periods so periodic behavior shows up.
    const sim::Time interval = 100 * sim::kMillisecond;
    f.src_a->send_stream(kGroup, packets, interval);
    f.src_b->send_stream(kGroup, packets, interval);
    f.src_c->send_stream(kGroup, packets, interval);
    f.net.run_for(packets * interval + 2 * sim::kSecond);

    Result r;
    r.protocol = name;
    r.data_transmissions = f.net.stats().total_data_packets();
    r.delivered = f.net.stats().data_delivered();
    r.segments_touched = f.net.stats().segments_carrying_data();
    // Traffic concentration on the wide-area backbone: the busiest
    // router-to-router segment (member LANs converge all flows under every
    // protocol, so they are excluded).
    for (const auto& segment : f.net.segments()) {
        bool backbone = true;
        for (const auto& att : segment->attachments()) {
            if (dynamic_cast<const topo::Router*>(att.node) == nullptr) {
                backbone = false;
                break;
            }
        }
        if (backbone) {
            r.max_flows = std::max(
                r.max_flows,
                static_cast<std::size_t>(f.net.stats().data_packets_on(segment->id())));
        }
    }
    r.control = f.net.stats().total_control_messages();
    r.state_entries = 0;
    for (const auto& router : f.net.routers()) r.state_entries += state_of(stack, *router);

    // B→C latency: time a fresh packet from src_b to member_c.
    f.member_c->clear_received();
    const sim::Time sent_at = f.net.simulator().now();
    f.src_b->send_data(kGroup);
    f.net.run_for(500 * sim::kMillisecond);
    for (const auto& rec : f.member_c->received()) {
        if (rec.source == f.src_b->address()) {
            r.delay_b_to_c_ms = static_cast<double>(rec.at - sent_at) /
                                static_cast<double>(sim::kMillisecond);
            break;
        }
    }
    return r;
}

void print(const Result& r, int packets, bench::Report& report) {
    const double per_delivery = r.delivered == 0
                                    ? 0.0
                                    : static_cast<double>(r.data_transmissions) /
                                          static_cast<double>(r.delivered);
    std::printf("%-10s %-8llu %-10llu %-10.2f %-9zu %-10zu %-9llu %-7zu %-10.2f\n",
                r.protocol.c_str(),
                static_cast<unsigned long long>(r.data_transmissions),
                static_cast<unsigned long long>(r.delivered), per_delivery,
                r.segments_touched, r.max_flows,
                static_cast<unsigned long long>(r.control), r.state_entries,
                r.delay_b_to_c_ms);
    (void)packets;
    report.metric("tx_per_delivery_" + r.protocol, per_delivery, "packets",
                  "info");
    report.metric("delay_b_to_c_ms_" + r.protocol, r.delay_b_to_c_ms, "ms",
                  "info");
}

} // namespace

int main(int argc, char** argv) {
    const int packets = bench::flag_value(argc, argv, "--packets", 50);
    std::printf("# Figure 1: 3 domains with one member each + 2 member-free stub\n");
    std::printf("# domains; senders in A, B and C; %d packets per sender.\n", packets);
    std::printf("%-10s %-8s %-10s %-10s %-9s %-10s %-9s %-7s %-10s\n", "protocol",
                "data_tx", "delivered", "tx/deliv", "segments", "peak_link",
                "control", "state", "B->C_ms");
    bench::Report report("fig1_overhead");

    print(run<scenario::DvmrpStack>(
              "DVMRP", [](Fig1Net&, scenario::DvmrpStack&) {},
              [](scenario::DvmrpStack& s, const topo::Router& r) {
                  return s.dvmrp_at(r).cache().size();
              },
              packets),
          packets, report);

    print(run<scenario::CbtStack>(
              "CBT",
              [](Fig1Net& f, scenario::CbtStack& s) {
                  // Core in domain A, as in Fig. 1(c).
                  s.set_core(kGroup, f.border_a->router_id());
              },
              [](scenario::CbtStack& s, const topo::Router& r) {
                  return s.cbt_at(r).tree_state(kGroup) != nullptr ? 1u : 0u;
              },
              packets),
          packets, report);

    print(run<scenario::PimSmStack>(
              "PIM-SPT",
              [](Fig1Net& f, scenario::PimSmStack& s) {
                  s.set_rp(kGroup, {f.border_a->router_id()});
                  s.set_spt_policy(pim::SptPolicy::immediate());
              },
              [](scenario::PimSmStack& s, const topo::Router& r) {
                  return s.pim_at(r).cache().size();
              },
              packets),
          packets, report);

    print(run<scenario::PimSmStack>(
              "PIM-RP",
              [](Fig1Net& f, scenario::PimSmStack& s) {
                  s.set_rp(kGroup, {f.border_a->router_id()});
                  s.set_spt_policy(pim::SptPolicy::never());
              },
              [](scenario::PimSmStack& s, const topo::Router& r) {
                  return s.pim_at(r).cache().size();
              },
              packets),
          packets, report);

    std::printf(
        "# Expected shape: DVMRP touches (nearly) every segment and spends the\n"
        "# most transmissions per delivery (periodic re-broadcast); CBT and\n"
        "# PIM-RP concentrate flows on the core/RP path (higher max_flows) and\n"
        "# stretch the B->C delay; PIM-SPT touches only on-tree segments and\n"
        "# delivers over shortest paths (lowest B->C delay).\n");
    report.emit();
    return 0;
}
