// Reproduces Figure 2(b): traffic concentration — the maximum number of
// traffic flows on any link, shortest-path trees vs a single center-based
// tree per group.
//
// Paper setup (§1.3): "In each network, there were 300 active groups all
// having 40 members, of which 32 members were also senders. We measured the
// number of traffic flows on each link of the network, then recorded the
// maximum number within the network. For each node degree between three and
// eight, 500 random networks were generated, and the measured maximum
// number of traffic flows were averaged."
//
// Usage: fig2b_traffic_concentration [--trials N] [--groups G]
#include <cstdio>

#include "bench_util.hpp"
#include "stats/counters.hpp"

using namespace pimlib;

namespace {

struct GroupSpec {
    std::vector<int> members; // 40
    std::vector<int> senders; // first 32 of the members
};

void add_spt_flows(const graph::AllPairs& ap, const GroupSpec& group,
                   bench::EdgeFlowCounter& flows, std::vector<int>& stamp_buf,
                   int& stamp) {
    for (int sender : group.senders) {
        const auto& spt = ap.tree(sender);
        ++stamp;
        for (const auto& [u, v] : bench::tree_edges(spt, group.members, stamp_buf, stamp)) {
            flows.add(u, v);
        }
    }
}

void add_cbt_flows(const graph::AllPairs& ap, const GroupSpec& group,
                   bench::EdgeFlowCounter& flows, std::vector<int>& stamp_buf,
                   int& stamp) {
    const int core = graph::optimal_core(ap, group.members);
    const auto& core_spt = ap.tree(core);
    // The shared tree: union of core→member paths. Every sender's flow
    // traverses the entire shared tree (each member must receive it).
    ++stamp;
    const auto shared = bench::tree_edges(core_spt, group.members, stamp_buf, stamp);
    for (const auto& [u, v] : shared) flows.add(u, v, group.senders.size());
    // Off-tree senders additionally reach the tree via their path to the
    // core. (Senders that are members are on the tree already.)
    for (int sender : group.senders) {
        bool on_tree = false;
        for (int m : group.members) {
            if (m == sender) {
                on_tree = true;
                break;
            }
        }
        if (on_tree) continue;
        ++stamp;
        for (const auto& [u, v] :
             bench::tree_edges(core_spt, std::vector<int>{sender}, stamp_buf, stamp)) {
            flows.add(u, v);
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    const int trials = bench::flag_value(argc, argv, "--trials", 500);
    const int group_count = bench::flag_value(argc, argv, "--groups", 300);
    const int nodes = 50;
    const int member_count = 40;
    const int sender_count = 32;

    std::printf("# Figure 2(b): max number of traffic flows on any link\n");
    std::printf("# 50-node random graphs, %d groups x %d members (%d senders), "
                "%d trials per degree\n",
                group_count, member_count, sender_count, trials);
    std::printf("%-12s %-14s %-14s %-8s\n", "node_degree", "spt_max_flows",
                "cbt_max_flows", "ratio");

    bench::Report report("fig2b_traffic_concentration");
    for (int degree = 3; degree <= 8; ++degree) {
        std::vector<double> spt_max;
        std::vector<double> cbt_max;
        std::mt19937 rng(0xF16B0000u + static_cast<std::uint32_t>(degree));
        for (int trial = 0; trial < trials; ++trial) {
            graph::Graph g = graph::random_connected_graph(
                {.nodes = nodes, .average_degree = static_cast<double>(degree)}, rng);
            graph::AllPairs ap(g);
            bench::EdgeFlowCounter spt_flows(g);
            bench::EdgeFlowCounter cbt_flows(g);
            std::vector<int> stamp_buf(static_cast<std::size_t>(nodes), 0);
            int stamp = 0;
            for (int gi = 0; gi < group_count; ++gi) {
                GroupSpec group;
                group.members = graph::sample_nodes(nodes, member_count, rng);
                group.senders.assign(group.members.begin(),
                                     group.members.begin() + sender_count);
                add_spt_flows(ap, group, spt_flows, stamp_buf, stamp);
                add_cbt_flows(ap, group, cbt_flows, stamp_buf, stamp);
            }
            spt_max.push_back(static_cast<double>(spt_flows.max_flows()));
            cbt_max.push_back(static_cast<double>(cbt_flows.max_flows()));
        }
        const auto spt_summary = stats::summarize(spt_max);
        const auto cbt_summary = stats::summarize(cbt_max);
        std::printf("%-12d %-14.1f %-14.1f %-8.2f\n", degree, spt_summary.mean,
                    cbt_summary.mean, cbt_summary.mean / spt_summary.mean);
        report.metric("concentration_ratio_deg" + std::to_string(degree),
                      cbt_summary.mean / spt_summary.mean, "ratio", "info");
    }
    std::printf("# Expected shape: CBT strictly above SPT at every degree, both\n");
    std::printf("# decreasing as degree grows (more links to spread over).\n");
    report.emit();
    return 0;
}
