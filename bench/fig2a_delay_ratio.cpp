// Reproduces Figure 2(a): "Comparison of shortest-path trees and
// center-based tree" — the ratio of the optimal core-based tree's maximum
// delay to the shortest-path trees' maximum delay, in 50-node networks.
//
// Paper setup (§1.3): "For each node degree, we tried 500 different 50-node
// graphs with 10-member groups chosen randomly. It can be seen that the
// maximum delays of core-based trees with optimal core placement are up to
// 1.4 times of the shortest-path trees."
//
// Usage: fig2a_delay_ratio [--trials N] [--members M] [--nodes V]
#include <cstdio>

#include "bench_util.hpp"
#include "stats/counters.hpp"

using namespace pimlib;

int main(int argc, char** argv) {
    const int trials = bench::flag_value(argc, argv, "--trials", 500);
    const int members = bench::flag_value(argc, argv, "--members", 10);
    const int nodes = bench::flag_value(argc, argv, "--nodes", 50);

    std::printf("# Figure 2(a): max delay of optimal core-based tree vs SPT\n");
    std::printf("# %d-node random graphs, %d-member groups, %d trials per degree\n",
                nodes, members, trials);
    std::printf("%-12s %-12s %-10s %-10s %-10s %-12s %-12s %-12s\n", "node_degree",
                "ratio_mean", "ratio_sd", "ratio_min", "ratio_max", "spt_delay",
                "cbt_delay", "mean_ratio");

    bench::Report report("fig2a_delay_ratio");
    for (int degree = 3; degree <= 8; ++degree) {
        std::vector<double> ratios;
        std::vector<double> mean_ratios;
        std::vector<double> spt_delays;
        std::vector<double> cbt_delays;
        ratios.reserve(static_cast<std::size_t>(trials));
        std::mt19937 rng(0xF16A0000u + static_cast<std::uint32_t>(degree));
        for (int trial = 0; trial < trials; ++trial) {
            graph::Graph g = graph::random_connected_graph(
                {.nodes = nodes, .average_degree = static_cast<double>(degree)}, rng);
            graph::AllPairs ap(g);
            const auto group = graph::sample_nodes(nodes, members, rng);
            // Same delay_ratio_via_root implementation the live TreeMonitor
            // uses — offline and online stretch cannot drift.
            const int core = graph::optimal_core(ap, group);
            const auto dr = graph::center_tree_delay_ratio(ap, group, core);
            if (dr.spt_max <= 0) continue;
            ratios.push_back(dr.max_ratio);
            spt_delays.push_back(dr.spt_max);
            cbt_delays.push_back(dr.tree_max);
            // The companion mean-delay criterion of reference [12], with the
            // core optimized for mean delay.
            const int mean_core = graph::optimal_core_mean(ap, group);
            const auto drm = graph::center_tree_delay_ratio(ap, group, mean_core);
            if (drm.spt_mean > 0) mean_ratios.push_back(drm.mean_ratio);
        }
        const auto summary = stats::summarize(ratios);
        std::printf("%-12d %-12.4f %-10.4f %-10.4f %-10.4f %-12.2f %-12.2f %-12.4f\n",
                    degree, summary.mean, summary.stddev, summary.min, summary.max,
                    stats::summarize(spt_delays).mean, stats::summarize(cbt_delays).mean,
                    stats::summarize(mean_ratios).mean);
        report.metric("ratio_mean_deg" + std::to_string(degree), summary.mean,
                      "ratio", "info");
        report.metric("ratio_max_deg" + std::to_string(degree), summary.max,
                      "ratio", "info");
    }
    std::printf("# Expected shape: mean ratio within (1.0, 1.4] at every degree —\n");
    std::printf("# \"maximum delays of core-based trees with optimal core placement\n");
    std::printf("# are up to 1.4 times of the shortest-path trees\" — and no data\n");
    std::printf("# point below 1 (the paper's footnote 2).\n");
    report.emit();
    return 0;
}
