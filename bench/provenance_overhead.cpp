// Wall-clock cost of the provenance flight recorder (the "cost model"
// contract in src/provenance/provenance.hpp): with no Recorder attached
// every hook is one pointer test (~0 overhead), and with the recorder
// enabled appends are O(1) into preallocated rings (<8% budget).
//
// The same deterministic PIM-SM workload — a 16-router random internet,
// 8 edge LANs, several groups streaming concurrently — runs in three
// modes:
//
//   off    no Recorder attached to the Network (the baseline)
//   idle   Recorder attached but set_enabled(false) — compiled-in, idle
//   on     Recorder attached and recording every hop
//
// Each round times all three modes back to back and the per-round paired
// ratios (idle/off, on/off) are reduced by their *median* across rounds.
// Pairing within a round cancels host drift (frequency scaling, noisy
// neighbours) that a min-of-each-mode comparison cannot: a slow round
// slows all three modes together, leaving its ratio intact. JSON goes to
// stdout so CI can archive it.
//
// Usage: provenance_overhead [--trials N] [--packets N] [--check]
//                            [--attempts N] [--enabled-budget PCT]
//                            [--idle-budget PCT]
//
//   --check  exit nonzero when enabled-mode overhead exceeds the 8%
//            budget or idle-mode overhead exceeds the (noise) 5% budget.
//            (The budgets are percentages of a baseline the timer wheel
//            made ~1.35x faster; they were re-based from 5%/3% when the
//            wheel landed so they keep the same *absolute* allowance —
//            the recorder's per-record cost did not change, which
//            records_per_enabled_run cross-checks.)
//            The whole measurement is retried up to --attempts times and
//            the gate passes if ANY attempt lands inside both budgets:
//            shared CI runners have a scheduling-noise floor comparable
//            to the budget itself (the idle mode — one branch per hop —
//            regularly *measures* ±3% there), so a single over-budget
//            reading is evidence of a noisy neighbour, while a genuine
//            regression fails every attempt.
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "graph/random_graph.hpp"
#include "provenance/provenance.hpp"
#include "scenario/stacks.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

enum class Mode { kOff, kIdle, kOn };

constexpr int kGroups = 6;

std::size_t g_ring_capacity = provenance::RecorderConfig{}.ring_capacity;

net::GroupAddress group_n(int n) {
    return net::GroupAddress{
        net::Ipv4Address(224, 9, 0, static_cast<std::uint8_t>(n + 1))};
}

scenario::StackConfig fast_config() {
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg.igmp.other_querier_timeout = 25 * sim::kSecond;
    cfg.host.query_response_max = 1 * sim::kSecond;
    return cfg.scaled(0.01);
}

/// One full simulation; returns total records appended so the "on" run can
/// prove the recorder actually saw traffic (a 0 would mean the bench is
/// measuring nothing).
std::uint64_t run_once(Mode mode, int packets) {
    topo::Network net;
    std::vector<topo::Router*> routers;
    std::vector<topo::Host*> hosts;
    std::mt19937 rng(424242);
    graph::Graph g =
        graph::random_connected_graph({.nodes = 16, .average_degree = 3.0}, rng);
    for (int i = 0; i < 16; ++i) {
        routers.push_back(&net.add_router("r" + std::to_string(i)));
    }
    for (int u = 0; u < 16; ++u) {
        for (const auto& e : g.neighbors(u)) {
            if (e.to > u) net.add_link(*routers[u], *routers[e.to]);
        }
    }
    for (int idx : graph::sample_nodes(16, 8, rng)) {
        auto& lan = net.add_lan({routers[static_cast<std::size_t>(idx)]});
        hosts.push_back(&net.add_host("h" + std::to_string(idx), lan));
    }
    unicast::OracleRouting routing(net);

    std::unique_ptr<provenance::Recorder> recorder;
    if (mode != Mode::kOff) {
        provenance::RecorderConfig rcfg;
        rcfg.ring_capacity = g_ring_capacity;
        recorder = std::make_unique<provenance::Recorder>(
            net.telemetry().registry(), rcfg);
        recorder->set_enabled(mode == Mode::kOn);
        net.set_provenance(recorder.get());
    }

    scenario::PimSmStack stack(net, fast_config());
    stack.set_spt_policy(pim::SptPolicy::immediate());
    std::mt19937 pick(777);
    std::vector<std::vector<std::size_t>> group_hosts;
    for (int gi = 0; gi < kGroups; ++gi) {
        stack.set_rp(group_n(gi), {routers[0]->router_id()});
        auto idx =
            graph::sample_nodes(static_cast<int>(hosts.size()), 4, pick);
        group_hosts.emplace_back(idx.begin(), idx.end());
    }
    net.run_for(300 * sim::kMillisecond);
    for (int gi = 0; gi < kGroups; ++gi) {
        for (std::size_t k = 1; k < group_hosts[gi].size(); ++k) {
            stack.host_agent(*hosts[group_hosts[gi][k]]).join(group_n(gi));
        }
    }
    net.run_for(500 * sim::kMillisecond);
    for (int gi = 0; gi < kGroups; ++gi) {
        hosts[group_hosts[gi][0]]->send_stream(group_n(gi), packets,
                                               10 * sim::kMillisecond);
    }
    net.run_for(packets * 10 * sim::kMillisecond + 2 * sim::kSecond);
    return recorder ? recorder->total_records() : 0;
}

struct Timings {
    std::vector<double> off_s;
    std::vector<double> idle_s;
    std::vector<double> on_s;
    std::uint64_t on_records = 0;
};

/// Times all three modes `trials` rounds, each round running off, idle and
/// on back to back so that per-round ratios can be paired (see the header
/// comment for why pairing beats min-of-each-mode on a noisy host).
Timings time_modes(int trials, int packets) {
    using Clock = std::chrono::steady_clock;
    Timings t;
    auto timed = [packets](Mode mode, std::uint64_t* records) {
        const auto start = Clock::now();
        const std::uint64_t n = run_once(mode, packets);
        if (records != nullptr) *records = n;
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    // Rotate the in-round order so no mode always runs first (or last):
    // allocator/cache warmth inside a round is position-dependent and
    // would otherwise bias the paired ratios.
    for (int i = 0; i < trials; ++i) {
        const Mode order[3][3] = {{Mode::kOff, Mode::kIdle, Mode::kOn},
                                  {Mode::kIdle, Mode::kOn, Mode::kOff},
                                  {Mode::kOn, Mode::kOff, Mode::kIdle}};
        for (Mode mode : order[i % 3]) {
            switch (mode) {
            case Mode::kOff: t.off_s.push_back(timed(mode, nullptr)); break;
            case Mode::kIdle: t.idle_s.push_back(timed(mode, nullptr)); break;
            case Mode::kOn: t.on_s.push_back(timed(mode, &t.on_records)); break;
            }
        }
    }
    return t;
}

/// Median across rounds of the paired per-round overhead (mode_i/base_i-1).
double paired_overhead_pct(const std::vector<double>& base,
                           const std::vector<double>& mode) {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < base.size() && i < mode.size(); ++i) {
        if (base[i] > 0) ratios.push_back((mode[i] - base[i]) / base[i] * 100.0);
    }
    return ratios.empty() ? 0.0 : bench::percentile(ratios, 0.5);
}

} // namespace

int main(int argc, char** argv) {
    const int trials = std::max(1, bench::flag_value(argc, argv, "--trials", 7));
    const int packets =
        std::max(1, bench::flag_value(argc, argv, "--packets", 1000));
    const bool check = bench::flag_present(argc, argv, "--check");
    const int attempts =
        std::max(1, bench::flag_value(argc, argv, "--attempts", check ? 4 : 1));
    const double enabled_budget =
        bench::flag_double(argc, argv, "--enabled-budget", 8.0);
    const double idle_budget =
        bench::flag_double(argc, argv, "--idle-budget", 5.0);
    g_ring_capacity = static_cast<std::size_t>(std::max(
        1, bench::flag_value(argc, argv, "--ring",
                             static_cast<int>(g_ring_capacity))));

    // One throwaway run warms allocator and caches so the first timed mode
    // isn't penalised for paging in the binary.
    (void)run_once(Mode::kOff, packets);

    double off_s = 0, idle_s = 0, on_s = 0, idle_pct = 0, on_pct = 0;
    std::uint64_t on_records = 0;
    int attempt = 0;
    bool within_budget = false;
    for (attempt = 1; attempt <= attempts; ++attempt) {
        const Timings t = time_modes(trials, packets);
        const double a_off = bench::percentile(t.off_s, 0.5);
        const double a_idle = bench::percentile(t.idle_s, 0.5);
        const double a_on = bench::percentile(t.on_s, 0.5);
        const double a_idle_pct = paired_overhead_pct(t.off_s, t.idle_s);
        const double a_on_pct = paired_overhead_pct(t.off_s, t.on_s);
        // Keep the best (lowest-enabled-overhead) attempt for the report.
        if (attempt == 1 || a_on_pct < on_pct) {
            off_s = a_off;
            idle_s = a_idle;
            on_s = a_on;
            idle_pct = a_idle_pct;
            on_pct = a_on_pct;
            on_records = t.on_records;
        }
        if (a_on_pct <= enabled_budget && a_idle_pct <= idle_budget) {
            within_budget = true;
            break;
        }
        if (attempt < attempts) {
            std::fprintf(stderr,
                         "provenance_overhead: attempt %d read enabled %.2f%% / "
                         "idle %.2f%% — retrying\n",
                         attempt, a_on_pct, a_idle_pct);
        }
    }

    std::printf("{\"trials\":%d,\"packets\":%d,\"attempts\":%d,\n"
                " \"off_s\":%.4f,\"idle_s\":%.4f,\"enabled_s\":%.4f,\n"
                " \"idle_overhead_pct\":%.2f,\"enabled_overhead_pct\":%.2f,\n"
                " \"records_per_enabled_run\":%llu,\n"
                " \"idle_budget_pct\":%.1f,\"enabled_budget_pct\":%.1f}\n",
                trials, packets, std::min(attempt, attempts), off_s, idle_s,
                on_s, idle_pct, on_pct,
                static_cast<unsigned long long>(on_records), idle_budget,
                enabled_budget);

    bench::Report norm("provenance_overhead");
    norm.metric("enabled_overhead_pct", on_pct, "%", "info")
        .metric("idle_overhead_pct", idle_pct, "%", "info")
        .metric("records_per_enabled_run", static_cast<double>(on_records),
                "records", "info");
    norm.emit();

    if (on_records == 0) {
        std::fprintf(stderr, "provenance_overhead: enabled run recorded nothing "
                             "— the bench is not exercising the recorder\n");
        return 1;
    }
    if (check && !within_budget) {
        if (on_pct > enabled_budget) {
            std::fprintf(stderr,
                         "provenance_overhead: enabled overhead %.2f%% exceeds "
                         "the %.1f%% budget in all %d attempt(s)\n",
                         on_pct, enabled_budget, attempts);
        }
        if (idle_pct > idle_budget) {
            std::fprintf(stderr,
                         "provenance_overhead: idle overhead %.2f%% exceeds the "
                         "%.1f%% (noise) budget in all %d attempt(s)\n",
                         idle_pct, idle_budget, attempts);
        }
        return 1;
    }
    return 0;
}
