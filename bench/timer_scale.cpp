// Event-scheduler throughput at soft-state scale: the hierarchical timing
// wheel (sim/timer_wheel.hpp, the store behind sim::Simulator) against the
// ordered-map scheduler it replaced, on the workload §3.4/§3.6 implies at
// million-entry scale — every (S,G)/(*,G) entry holds a timer, and every
// refresh interval each one is cancelled and rescheduled.
//
// For each entry count N (1k → 1M) both backends run the same three-phase
// deterministic workload, timed separately:
//
//   schedule  N events at pseudorandom deadlines spread across the horizon
//   refresh   rounds of cancel + reschedule for every entry, walking the
//             entries in iteration order as a real refresh tick does
//   fire      drain every pending event in time order
//
// The headline ratio is overall events/second (all phases); the flatness
// series is wheel nanoseconds per refresh op versus N — O(1) scheduling
// means it must not grow with N, while the map's O(log n) visibly does.
// docs/TIMERS.md derives why; EXPERIMENTS.md walks the sweep.
//
// JSON goes to stdout so CI can archive it (bench-json artifact).
//
// Usage: timer_scale [--max-entries N] [--rounds N] [--check]
//                    [--attempts N] [--min-speedup X] [--flat-factor X]
//
//   --check  exit nonzero unless, in at least one attempt (shared runners
//            are noisy; a real regression fails every attempt):
//              - wheel/map events-per-second ratio at the largest N is
//                >= --min-speedup (default 10), and
//              - wheel per-refresh cost at the largest N is <=
//                --flat-factor (default 3) x its cost at the smallest N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

using namespace pimlib;

namespace {

using Clock = std::chrono::steady_clock;
using Action = std::function<void()>;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The scheduler sim::Simulator used before the wheel: an ordered map keyed
/// (time, seq), one tree node (and allocation) per event. Kept verbatim here
/// as the measured baseline.
class MapScheduler {
public:
    struct Key {
        sim::Time at;
        std::uint64_t seq;
        friend bool operator<(const Key& a, const Key& b) {
            return a.at != b.at ? a.at < b.at : a.seq < b.seq;
        }
    };

    Key schedule(sim::Time at, std::uint64_t seq, Action action) {
        queue_.emplace(Key{at, seq}, std::move(action));
        return Key{at, seq};
    }

    bool cancel(Key key) { return queue_.erase(key) > 0; }

    /// Pops and runs the earliest event; false when empty.
    bool fire_next() {
        if (queue_.empty()) return false;
        auto it = queue_.begin();
        Action action = std::move(it->second);
        queue_.erase(it);
        action();
        return true;
    }

    [[nodiscard]] std::size_t size() const { return queue_.size(); }

private:
    std::map<Key, Action> queue_;
};

/// Deadlines shaped like soft-state timers: most mass at a "holdtime" scale
/// with jitter, a slice of long RP/neighbor timers, all deterministic.
std::vector<sim::Time> make_deadlines(int n, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<sim::Time> hold(100 * sim::kMillisecond,
                                                  180 * sim::kSecond);
    std::uniform_int_distribution<sim::Time> lng(180 * sim::kSecond,
                                                 3600 * sim::kSecond);
    std::vector<sim::Time> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        out.push_back(i % 16 == 0 ? lng(rng) : hold(rng));
    }
    return out;
}

struct PhaseTimes {
    double schedule_s = 0;
    double refresh_s = 0;
    double fire_s = 0;
    std::uint64_t fired = 0;

    [[nodiscard]] double total_s() const { return schedule_s + refresh_s + fire_s; }
};

PhaseTimes run_wheel(int n, int rounds) {
    PhaseTimes t;
    sim::TimerWheel wheel;
    std::uint64_t fired = 0;
    std::uint64_t seq = 1;
    const std::vector<sim::Time> deadlines = make_deadlines(n, 0xABCD1234u);
    std::vector<std::pair<sim::TimerWheel::Node*, std::uint64_t>> handles(
        static_cast<std::size_t>(n));

    auto start = Clock::now();
    for (int i = 0; i < n; ++i) {
        const std::uint64_t s = seq++;
        handles[static_cast<std::size_t>(i)] = {
            wheel.schedule(deadlines[static_cast<std::size_t>(i)], s,
                           [&fired] { ++fired; }),
            s};
    }
    t.schedule_s = seconds_since(start);

    start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
        for (int i = 0; i < n; ++i) {
            auto& [node, s] = handles[static_cast<std::size_t>(i)];
            wheel.cancel(node, s);
            const std::uint64_t ns = seq++;
            node = wheel.schedule(
                deadlines[static_cast<std::size_t>(i)] + (round + 1) * sim::kSecond,
                ns, [&fired] { ++fired; });
            s = ns;
        }
    }
    t.refresh_s = seconds_since(start);

    start = Clock::now();
    sim::Time at = 0;
    while (wheel.next_time(&at)) {
        wheel.open_batch(at);
        while (wheel.batch_live() > 0) wheel.take(0)();
    }
    t.fire_s = seconds_since(start);
    t.fired = fired;
    return t;
}

PhaseTimes run_map(int n, int rounds) {
    PhaseTimes t;
    MapScheduler sched;
    std::uint64_t fired = 0;
    std::uint64_t seq = 1;
    const std::vector<sim::Time> deadlines = make_deadlines(n, 0xABCD1234u);
    std::vector<MapScheduler::Key> handles(static_cast<std::size_t>(n));

    auto start = Clock::now();
    for (int i = 0; i < n; ++i) {
        handles[static_cast<std::size_t>(i)] = sched.schedule(
            deadlines[static_cast<std::size_t>(i)], seq++, [&fired] { ++fired; });
    }
    t.schedule_s = seconds_since(start);

    start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
        for (int i = 0; i < n; ++i) {
            sched.cancel(handles[static_cast<std::size_t>(i)]);
            handles[static_cast<std::size_t>(i)] = sched.schedule(
                deadlines[static_cast<std::size_t>(i)] + (round + 1) * sim::kSecond,
                seq++, [&fired] { ++fired; });
        }
    }
    t.refresh_s = seconds_since(start);

    start = Clock::now();
    while (sched.fire_next()) {
    }
    t.fire_s = seconds_since(start);
    t.fired = fired;
    return t;
}

struct SizeResult {
    int n = 0;
    PhaseTimes wheel;
    PhaseTimes map;

    /// Total ops = N schedules + rounds*N cancels + rounds*N reschedules +
    /// N fires.
    [[nodiscard]] static double ops(int n, int rounds) {
        return static_cast<double>(n) * (2.0 + 2.0 * rounds);
    }
    [[nodiscard]] double speedup() const {
        return wheel.total_s() > 0 ? map.total_s() / wheel.total_s() : 0.0;
    }
    [[nodiscard]] double wheel_refresh_ns(int rounds) const {
        const double refresh_ops = 2.0 * rounds * n;
        return refresh_ops > 0 ? wheel.refresh_s * 1e9 / refresh_ops : 0.0;
    }
    [[nodiscard]] double map_refresh_ns(int rounds) const {
        const double refresh_ops = 2.0 * rounds * n;
        return refresh_ops > 0 ? map.refresh_s * 1e9 / refresh_ops : 0.0;
    }
};

} // namespace

int main(int argc, char** argv) {
    const int max_entries =
        std::max(1000, bench::flag_value(argc, argv, "--max-entries", 1'000'000));
    const int rounds = std::max(1, bench::flag_value(argc, argv, "--rounds", 2));
    const bool check = bench::flag_present(argc, argv, "--check");
    const int attempts =
        std::max(1, bench::flag_value(argc, argv, "--attempts", check ? 3 : 1));
    const double min_speedup = bench::flag_double(argc, argv, "--min-speedup", 10.0);
    const double flat_factor = bench::flag_double(argc, argv, "--flat-factor", 3.0);

    std::vector<int> sizes;
    for (int n = 1000; n < max_entries; n *= 10) sizes.push_back(n);
    sizes.push_back(max_entries);

    // Warm allocator/caches so the first timed size isn't paying page-ins.
    (void)run_wheel(1000, rounds);
    (void)run_map(1000, rounds);

    // --profile: capture zone attribution (the wheel's cascade zone fires
    // inside next_time/roll) across the timed sweep.
    bench::profile_begin(argc, argv);

    std::vector<SizeResult> results;
    double top_speedup = 0.0;
    double flatness = 0.0;
    bool within = false;
    int attempt = 0;
    for (attempt = 1; attempt <= attempts; ++attempt) {
        std::vector<SizeResult> r;
        for (int n : sizes) {
            SizeResult sr;
            sr.n = n;
            sr.wheel = run_wheel(n, rounds);
            sr.map = run_map(n, rounds);
            r.push_back(sr);
        }
        const double a_speedup = r.back().speedup();
        const double small_ns = r.front().wheel_refresh_ns(rounds);
        const double big_ns = r.back().wheel_refresh_ns(rounds);
        const double a_flatness = small_ns > 0 ? big_ns / small_ns : 0.0;
        if (attempt == 1 || a_speedup > top_speedup) {
            results = r;
            top_speedup = a_speedup;
            flatness = a_flatness;
        }
        if (a_speedup >= min_speedup && a_flatness <= flat_factor) {
            results = r;
            top_speedup = a_speedup;
            flatness = a_flatness;
            within = true;
            break;
        }
        if (attempt < attempts) {
            std::fprintf(stderr,
                         "timer_scale: attempt %d read speedup %.1fx / flatness "
                         "%.2fx — retrying\n",
                         attempt, a_speedup, a_flatness);
        }
    }

    std::printf("{\"rounds\":%d,\"attempts\":%d,\"min_speedup\":%.1f,"
                "\"flat_factor\":%.1f,\n \"sizes\":[",
                rounds, std::min(attempt, attempts), min_speedup, flat_factor);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SizeResult& r = results[i];
        const double ops = SizeResult::ops(r.n, rounds);
        std::printf(
            "%s\n  {\"entries\":%d,"
            "\"wheel_s\":%.4f,\"map_s\":%.4f,\"speedup\":%.2f,"
            "\"wheel_events_per_s\":%.0f,\"map_events_per_s\":%.0f,"
            "\"wheel_refresh_ns\":%.1f,\"map_refresh_ns\":%.1f,"
            "\"wheel_fired\":%llu,\"map_fired\":%llu}",
            i == 0 ? "" : ",", r.n, r.wheel.total_s(), r.map.total_s(),
            r.speedup(), ops / r.wheel.total_s(), ops / r.map.total_s(),
            r.wheel_refresh_ns(rounds), r.map_refresh_ns(rounds),
            static_cast<unsigned long long>(r.wheel.fired),
            static_cast<unsigned long long>(r.map.fired));
    }
    std::printf("\n ],\n \"top_speedup\":%.2f,\"refresh_flatness\":%.2f}\n",
                top_speedup, flatness);

    bench::profile_end(argc, argv, "timer_scale");

    const SizeResult& top = results.back();
    bench::Report norm("timer_scale");
    norm.metric("top_speedup", top_speedup, "x", "higher")
        .metric("refresh_flatness", flatness, "x", "lower")
        .metric("wheel_events_per_s",
                SizeResult::ops(top.n, rounds) / top.wheel.total_s(), "events/s",
                "info")
        .metric("wheel_refresh_ns", top.wheel_refresh_ns(rounds), "ns", "info");
    norm.emit();

    // Both backends must have fired every scheduled event — a mismatch means
    // one of them lost or duplicated work and the timings are meaningless.
    for (const SizeResult& r : results) {
        if (r.wheel.fired != static_cast<std::uint64_t>(r.n) ||
            r.map.fired != static_cast<std::uint64_t>(r.n)) {
            std::fprintf(stderr,
                         "timer_scale: fired-count mismatch at n=%d (wheel %llu, "
                         "map %llu)\n",
                         r.n, static_cast<unsigned long long>(r.wheel.fired),
                         static_cast<unsigned long long>(r.map.fired));
            return 1;
        }
    }
    if (check && !within) {
        if (top_speedup < min_speedup) {
            std::fprintf(stderr,
                         "timer_scale: speedup %.2fx at %d entries is below the "
                         "%.1fx gate in all %d attempt(s)\n",
                         top_speedup, sizes.back(), min_speedup, attempts);
        }
        if (flatness > flat_factor) {
            std::fprintf(stderr,
                         "timer_scale: wheel per-refresh cost grew %.2fx from %d "
                         "to %d entries (gate %.1fx) in all %d attempt(s)\n",
                         flatness, sizes.front(), sizes.back(), flat_factor,
                         attempts);
        }
        return 1;
    }
    return 0;
}
