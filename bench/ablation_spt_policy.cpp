// Ablation: the SPT switchover policy (§3.3).
//
// "A DR may adopt a policy of not setting up an (S,G) entry until it has
// received m data packets from the source within some interval of n
// seconds. This would eliminate the overhead of sending (S,G) state
// upstream when small numbers of packets are sent sporadically. However,
// data packets distributed in this manner may be delivered over the
// suboptimal paths of the shared RP tree."
//
// Sweeps the threshold m for two workloads — a sporadic low-rate source
// (resource-discovery style) and a high-rate source (teleconference style,
// §1.3) — and reports mean delivery latency and how much (S,G) state the
// network carries.
//
// Usage: ablation_spt_policy
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "scenario/stacks.hpp"
#include "unicast/oracle_routing.hpp"

using namespace pimlib;

namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

struct Run {
    double mean_latency_ms = 0;
    std::size_t sg_entries = 0;
    std::size_t delivered = 0;
};

// Same divergent topology as examples/spt_switchover: shared path ~42 ms,
// SPT ~4 ms.
Run run_policy(pim::SptPolicy policy, int packets, sim::Time interval) {
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& d = net.add_router("D");
    auto& x = net.add_router("X");
    auto& y = net.add_router("Y");
    auto& c = net.add_router("C");
    auto& rlan = net.add_lan({&a});
    auto& receiver = net.add_host("receiver", rlan);
    net.add_link(a, b, 2 * sim::kMillisecond, 3);
    net.add_link(b, d, 2 * sim::kMillisecond, 1);
    net.add_link(b, x, 10 * sim::kMillisecond, 1);
    net.add_link(x, y, 10 * sim::kMillisecond, 1);
    net.add_link(y, c, 10 * sim::kMillisecond, 1);
    net.add_link(a, c, 10 * sim::kMillisecond, 4);
    auto& slan = net.add_lan({&d});
    auto& source = net.add_host("source", slan);
    unicast::OracleRouting routing(net);

    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    scenario::PimSmStack pim(net, cfg.scaled(0.01));
    pim.set_rp(kGroup, {c.router_id()});
    pim.set_spt_policy(policy);
    net.run_for(200 * sim::kMillisecond);
    pim.host_agent(receiver).join(kGroup);
    net.run_for(300 * sim::kMillisecond);

    std::vector<sim::Time> sent_at;
    for (int i = 0; i < packets; ++i) {
        net.simulator().schedule(i * interval, [&net, &source, &sent_at] {
            sent_at.push_back(net.simulator().now());
            source.send_data(kGroup);
        });
    }
    net.run_for(packets * interval + 2 * sim::kSecond);

    Run r;
    double total = 0;
    for (const auto& rec : receiver.received()) {
        const std::size_t i = static_cast<std::size_t>(rec.seq) - 1;
        if (i < sent_at.size()) {
            total += static_cast<double>(rec.at - sent_at[i]) /
                     static_cast<double>(sim::kMillisecond);
        }
    }
    r.delivered = receiver.received_count(kGroup);
    r.mean_latency_ms = r.delivered == 0 ? -1 : total / static_cast<double>(r.delivered);
    for (const auto& router : net.routers()) {
        r.sg_entries += pim.pim_at(*router).cache().sg_count();
    }
    return r;
}

void sweep(const char* workload, const char* tag, int packets,
           sim::Time interval, bench::Report& report) {
    std::printf("\n## workload: %s (%d packets, %lld ms apart)\n", workload, packets,
                static_cast<long long>(interval / sim::kMillisecond));
    std::printf("%-22s %-14s %-12s %-10s\n", "policy", "mean_lat_ms", "sg_entries",
                "delivered");
    struct P {
        const char* name;
        const char* tag;
        pim::SptPolicy policy;
    };
    const P policies[] = {
        {"never (RP tree)", "rp_tree", pim::SptPolicy::never()},
        {"threshold m=20", "thresh20", pim::SptPolicy::threshold(20, 10 * sim::kSecond)},
        {"threshold m=5", "thresh5", pim::SptPolicy::threshold(5, 10 * sim::kSecond)},
        {"immediate", "immediate", pim::SptPolicy::immediate()},
    };
    for (const P& p : policies) {
        const Run r = run_policy(p.policy, packets, interval);
        std::printf("%-22s %-14.1f %-12zu %-10zu\n", p.name, r.mean_latency_ms,
                    r.sg_entries, r.delivered);
        const std::string key = std::string(tag) + "_" + p.tag;
        report.metric("mean_lat_ms_" + key, r.mean_latency_ms, "ms", "info");
        report.metric("sg_entries_" + key, static_cast<double>(r.sg_entries),
                      "entries", "info");
    }
}

} // namespace

int main() {
    std::printf("# Ablation: SPT switchover policy (§3.3) — latency vs (S,G) state\n");
    bench::Report report("ablation_spt_policy");
    sweep("sporadic low-rate source", "sporadic", 6, 500 * sim::kMillisecond,
          report);
    sweep("high-rate source", "highrate", 60, 20 * sim::kMillisecond, report);
    std::printf(
        "\n# Expected shape: staying on the RP tree holds latency at the shared-\n"
        "# path cost with zero receiver-side (S,G) state; immediate switching\n"
        "# buys shortest-path latency at the cost of per-source state even for\n"
        "# sporadic senders; thresholds interpolate — \"shared trees may perform\n"
        "# very well for large numbers of low data rate sources ... while SPTs\n"
        "# may be better suited for high data rate sources\" (§1.3).\n");
    report.emit();
    return 0;
}
