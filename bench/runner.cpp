// bench_runner: one entry point for the whole bench suite.
//
// Runs a subset of the plain bench harnesses (each prints a final
// normalized pimbench/1 JSON line — see bench_util.hpp), collects the
// normalized results into one schema with run metadata (commit, flags,
// host), appends them to a per-bench history file, and — with --check —
// gates each bench against its committed baseline using the noise-aware
// comparator in runner_util.hpp (direction-aware best-of-N vs a per-metric
// ratio threshold). CI calls this once instead of scripting ten binaries.
//
// Usage:
//   bench_runner [--bench a,b,...] [--runs N] [--check]
//                [--bin-dir DIR] [--baselines DIR] [--history DIR]
//                [--out DIR] [--list]
//
//   --bench      comma-separated subset (default: every known bench)
//   --runs       repetitions per bench; the gate takes the direction-aware
//                best over the N runs (default 1, --check default 2)
//   --check      compare against <baselines>/<bench>.json and exit nonzero
//                on any regression or missing gated metric
//   --bin-dir    where the bench executables live (default: the directory
//                bench_runner itself was started from)
//   --baselines  committed baseline directory (default <source>/baselines
//                is not knowable here, so default "bench/baselines")
//   --history    where <bench>.BENCH_HISTORY.json files accumulate
//                (default "bench-history")
//   --out        also write each bench's normalized line to
//                <out>/<bench>.json for artifact upload
//   --list       print the known benches with their default args and exit
//
// micro_pim is intentionally absent: it speaks google-benchmark JSON, not
// pimbench/1, and its regressions are gated upstream by its own --check.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runner_util.hpp"

namespace runner = pimlib::bench::runner;
namespace bench = pimlib::bench;

namespace {

struct BenchSpec {
    const char* name;
    // Default args sized for CI: minutes for the whole suite, not per bench.
    const char* args;
};

// Every plain harness with a normalized line. Args pin the workload so the
// committed baselines describe a reproducible configuration.
constexpr BenchSpec kBenches[] = {
    {"fig2a_delay_ratio", "--trials 20"},
    {"fig2b_traffic_concentration", "--trials 8 --groups 40"},
    {"fig1_overhead", "--packets 20"},
    {"scaling_overhead", "--packets 20"},
    {"ablation_refresh", ""},
    {"ablation_spt_policy", ""},
    {"fault_convergence", "--trials 2"},
    {"churn_scale", "--receivers 4000 --rate 400"},
    {"provenance_overhead", "--trials 3 --packets 400"},
    {"timer_scale", "--max-entries 100000"},
};

std::string flag_string(int argc, char** argv, const char* name,
                        const char* fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    }
    return fallback;
}

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

std::string dirname_of(const std::string& path) {
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) return false;
    out << content;
    return static_cast<bool>(out);
}

/// Runs `cmd`, captures its stdout, returns the exit status (-1 on spawn
/// failure). Child stderr passes through to ours so bench diagnostics stay
/// visible in CI logs.
int run_capture(const std::string& cmd, std::string* stdout_text) {
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return -1;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        stdout_text->append(buf, n);
    }
    const int status = pclose(pipe);
    if (status < 0) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return 128;
}

std::string git_commit() {
    std::string out;
    if (run_capture("git rev-parse --short HEAD 2>/dev/null", &out) != 0) {
        return "unknown";
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
    }
    return out.empty() ? "unknown" : out;
}

std::string host_name() {
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    const bool check = bench::flag_present(argc, argv, "--check");
    const int runs = std::max(
        1, bench::flag_value(argc, argv, "--runs", check ? 2 : 1));
    const std::string bin_dir =
        flag_string(argc, argv, "--bin-dir", dirname_of(argv[0]).c_str());
    const std::string baselines_dir =
        flag_string(argc, argv, "--baselines", "bench/baselines");
    const std::string history_dir =
        flag_string(argc, argv, "--history", "bench-history");
    const std::string out_dir = flag_string(argc, argv, "--out", "");
    const std::string subset_csv = flag_string(argc, argv, "--bench", "");

    if (bench::flag_present(argc, argv, "--list")) {
        for (const BenchSpec& spec : kBenches) {
            std::printf("%-28s %s\n", spec.name, spec.args);
        }
        return 0;
    }

    std::vector<BenchSpec> selected;
    if (subset_csv.empty()) {
        selected.assign(std::begin(kBenches), std::end(kBenches));
    } else {
        for (const std::string& want : split_csv(subset_csv)) {
            bool found = false;
            for (const BenchSpec& spec : kBenches) {
                if (want == spec.name) {
                    selected.push_back(spec);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr, "bench_runner: unknown bench '%s' "
                                     "(see --list)\n",
                             want.c_str());
                return 2;
            }
        }
    }

    mkdir(history_dir.c_str(), 0755);
    if (!out_dir.empty()) mkdir(out_dir.c_str(), 0755);

    runner::RunMeta meta;
    meta.commit = git_commit();
    meta.host = host_name();
    meta.timestamp = static_cast<long long>(std::time(nullptr));

    int failures = 0;
    for (const BenchSpec& spec : selected) {
        const std::string cmd =
            bin_dir + "/" + spec.name + (spec.args[0] != '\0' ? " " : "") +
            spec.args;
        std::vector<runner::BenchResult> results;
        std::string last_line;
        bool bench_ok = true;
        for (int r = 0; r < runs; ++r) {
            std::printf("== %s (run %d/%d): %s\n", spec.name, r + 1, runs,
                        cmd.c_str());
            std::fflush(stdout);
            std::string stdout_text;
            const int status = run_capture(cmd, &stdout_text);
            if (status != 0) {
                std::fprintf(stderr,
                             "bench_runner: %s exited with status %d\n",
                             spec.name, status);
                bench_ok = false;
                break;
            }
            auto result = runner::extract_result(stdout_text);
            if (!result) {
                std::fprintf(stderr,
                             "bench_runner: %s printed no pimbench/1 line\n",
                             spec.name);
                bench_ok = false;
                break;
            }
            results.push_back(std::move(*result));
            // Keep the raw normalized line of the last run for --out.
            const std::size_t nl = stdout_text.rfind(
                "{\"schema\":\"pimbench/1\"");
            if (nl != std::string::npos) {
                last_line = stdout_text.substr(nl);
                if (const std::size_t e = last_line.find('\n');
                    e != std::string::npos) {
                    last_line.resize(e);
                }
            }
        }
        if (!bench_ok) {
            ++failures;
            continue;
        }

        meta.flags = spec.args;
        const std::string history_path =
            history_dir + "/" + spec.name + ".BENCH_HISTORY.json";
        const std::string appended = runner::history_append(
            read_file(history_path),
            runner::history_entry_json(meta, results));
        if (!write_file(history_path, appended)) {
            std::fprintf(stderr, "bench_runner: cannot write %s\n",
                         history_path.c_str());
        }
        if (!out_dir.empty() && !last_line.empty()) {
            write_file(out_dir + "/" + spec.name + ".json", last_line + "\n");
        }

        if (check) {
            const std::string baseline_path =
                baselines_dir + "/" + spec.name + ".json";
            const std::string baseline_text = read_file(baseline_path);
            if (baseline_text.empty()) {
                std::fprintf(stderr,
                             "bench_runner: no baseline at %s — gate FAILS "
                             "(a missing baseline must not read as a pass)\n",
                             baseline_path.c_str());
                ++failures;
                continue;
            }
            auto baseline = runner::parse_baseline(baseline_text);
            if (!baseline) {
                std::fprintf(stderr, "bench_runner: malformed baseline %s\n",
                             baseline_path.c_str());
                ++failures;
                continue;
            }
            const runner::GateReport report =
                runner::gate(*baseline, results);
            for (const runner::GateFinding& f : report.findings) {
                std::printf("   %s %s\n", f.regressed ? "FAIL" : "ok  ",
                            f.to_string().c_str());
            }
            if (!report.pass) {
                std::fprintf(stderr,
                             "bench_runner: %s regressed against baseline\n",
                             spec.name);
                ++failures;
            }
        }
    }

    if (failures > 0) {
        std::fprintf(stderr, "bench_runner: %d bench(es) failed\n", failures);
        return 1;
    }
    std::printf("bench_runner: %zu bench(es) ok (commit %s, host %s)\n",
                selected.size(), meta.commit.c_str(), meta.host.c_str());
    return 0;
}
