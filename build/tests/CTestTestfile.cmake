# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_unicast[1]_include.cmake")
include("/root/repo/build/tests/test_igmp[1]_include.cmake")
include("/root/repo/build/tests/test_mcast[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_pim_messages[1]_include.cmake")
include("/root/repo/build/tests/test_pim_sm[1]_include.cmake")
include("/root/repo/build/tests/test_pim_edge[1]_include.cmake")
include("/root/repo/build/tests/test_pim_walkthrough[1]_include.cmake")
include("/root/repo/build/tests/test_pim_dm[1]_include.cmake")
include("/root/repo/build/tests/test_dvmrp[1]_include.cmake")
include("/root/repo/build/tests/test_cbt[1]_include.cmake")
include("/root/repo/build/tests/test_mospf[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_interop[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
