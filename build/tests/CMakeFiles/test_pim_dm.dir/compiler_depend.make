# Empty compiler generated dependencies file for test_pim_dm.
# This may be replaced when dependencies are built.
