file(REMOVE_RECURSE
  "CMakeFiles/test_pim_dm.dir/pim_dm_test.cpp.o"
  "CMakeFiles/test_pim_dm.dir/pim_dm_test.cpp.o.d"
  "test_pim_dm"
  "test_pim_dm.pdb"
  "test_pim_dm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
