# Empty dependencies file for test_pim_walkthrough.
# This may be replaced when dependencies are built.
