file(REMOVE_RECURSE
  "CMakeFiles/test_pim_walkthrough.dir/pim_walkthrough_test.cpp.o"
  "CMakeFiles/test_pim_walkthrough.dir/pim_walkthrough_test.cpp.o.d"
  "test_pim_walkthrough"
  "test_pim_walkthrough.pdb"
  "test_pim_walkthrough[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
