file(REMOVE_RECURSE
  "CMakeFiles/test_pim_edge.dir/pim_edge_test.cpp.o"
  "CMakeFiles/test_pim_edge.dir/pim_edge_test.cpp.o.d"
  "test_pim_edge"
  "test_pim_edge.pdb"
  "test_pim_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
