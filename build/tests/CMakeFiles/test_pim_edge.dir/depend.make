# Empty dependencies file for test_pim_edge.
# This may be replaced when dependencies are built.
