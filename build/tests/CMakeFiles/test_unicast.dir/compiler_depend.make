# Empty compiler generated dependencies file for test_unicast.
# This may be replaced when dependencies are built.
