file(REMOVE_RECURSE
  "CMakeFiles/test_unicast.dir/unicast_test.cpp.o"
  "CMakeFiles/test_unicast.dir/unicast_test.cpp.o.d"
  "test_unicast"
  "test_unicast.pdb"
  "test_unicast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
