# Empty dependencies file for test_pim_sm.
# This may be replaced when dependencies are built.
