file(REMOVE_RECURSE
  "CMakeFiles/test_pim_sm.dir/pim_sm_test.cpp.o"
  "CMakeFiles/test_pim_sm.dir/pim_sm_test.cpp.o.d"
  "test_pim_sm"
  "test_pim_sm.pdb"
  "test_pim_sm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
