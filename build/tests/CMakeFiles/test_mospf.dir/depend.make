# Empty dependencies file for test_mospf.
# This may be replaced when dependencies are built.
