file(REMOVE_RECURSE
  "CMakeFiles/test_mospf.dir/mospf_test.cpp.o"
  "CMakeFiles/test_mospf.dir/mospf_test.cpp.o.d"
  "test_mospf"
  "test_mospf.pdb"
  "test_mospf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
