file(REMOVE_RECURSE
  "CMakeFiles/test_cbt.dir/cbt_test.cpp.o"
  "CMakeFiles/test_cbt.dir/cbt_test.cpp.o.d"
  "test_cbt"
  "test_cbt.pdb"
  "test_cbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
