# Empty compiler generated dependencies file for test_cbt.
# This may be replaced when dependencies are built.
