# Empty compiler generated dependencies file for test_pim_messages.
# This may be replaced when dependencies are built.
