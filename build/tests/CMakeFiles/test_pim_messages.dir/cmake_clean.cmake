file(REMOVE_RECURSE
  "CMakeFiles/test_pim_messages.dir/pim_messages_test.cpp.o"
  "CMakeFiles/test_pim_messages.dir/pim_messages_test.cpp.o.d"
  "test_pim_messages"
  "test_pim_messages.pdb"
  "test_pim_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
