file(REMOVE_RECURSE
  "CMakeFiles/test_dvmrp.dir/dvmrp_test.cpp.o"
  "CMakeFiles/test_dvmrp.dir/dvmrp_test.cpp.o.d"
  "test_dvmrp"
  "test_dvmrp.pdb"
  "test_dvmrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvmrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
