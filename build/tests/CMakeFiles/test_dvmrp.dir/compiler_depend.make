# Empty compiler generated dependencies file for test_dvmrp.
# This may be replaced when dependencies are built.
