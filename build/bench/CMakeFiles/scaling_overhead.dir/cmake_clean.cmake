file(REMOVE_RECURSE
  "CMakeFiles/scaling_overhead.dir/scaling_overhead.cpp.o"
  "CMakeFiles/scaling_overhead.dir/scaling_overhead.cpp.o.d"
  "scaling_overhead"
  "scaling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
