# Empty dependencies file for scaling_overhead.
# This may be replaced when dependencies are built.
