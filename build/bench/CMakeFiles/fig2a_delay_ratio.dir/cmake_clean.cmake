file(REMOVE_RECURSE
  "CMakeFiles/fig2a_delay_ratio.dir/fig2a_delay_ratio.cpp.o"
  "CMakeFiles/fig2a_delay_ratio.dir/fig2a_delay_ratio.cpp.o.d"
  "fig2a_delay_ratio"
  "fig2a_delay_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_delay_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
