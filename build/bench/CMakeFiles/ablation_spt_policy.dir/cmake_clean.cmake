file(REMOVE_RECURSE
  "CMakeFiles/ablation_spt_policy.dir/ablation_spt_policy.cpp.o"
  "CMakeFiles/ablation_spt_policy.dir/ablation_spt_policy.cpp.o.d"
  "ablation_spt_policy"
  "ablation_spt_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spt_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
