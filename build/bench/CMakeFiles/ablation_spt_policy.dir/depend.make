# Empty dependencies file for ablation_spt_policy.
# This may be replaced when dependencies are built.
