file(REMOVE_RECURSE
  "CMakeFiles/micro_pim.dir/micro_pim.cpp.o"
  "CMakeFiles/micro_pim.dir/micro_pim.cpp.o.d"
  "micro_pim"
  "micro_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
