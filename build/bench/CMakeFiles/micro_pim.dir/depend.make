# Empty dependencies file for micro_pim.
# This may be replaced when dependencies are built.
