# Empty dependencies file for fig2b_traffic_concentration.
# This may be replaced when dependencies are built.
