file(REMOVE_RECURSE
  "CMakeFiles/fig2b_traffic_concentration.dir/fig2b_traffic_concentration.cpp.o"
  "CMakeFiles/fig2b_traffic_concentration.dir/fig2b_traffic_concentration.cpp.o.d"
  "fig2b_traffic_concentration"
  "fig2b_traffic_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_traffic_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
