file(REMOVE_RECURSE
  "CMakeFiles/lan_override.dir/lan_override.cpp.o"
  "CMakeFiles/lan_override.dir/lan_override.cpp.o.d"
  "lan_override"
  "lan_override.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lan_override.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
