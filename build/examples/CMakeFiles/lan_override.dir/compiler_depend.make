# Empty compiler generated dependencies file for lan_override.
# This may be replaced when dependencies are built.
