file(REMOVE_RECURSE
  "CMakeFiles/pimsim.dir/pimsim.cpp.o"
  "CMakeFiles/pimsim.dir/pimsim.cpp.o.d"
  "pimsim"
  "pimsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
