# Empty compiler generated dependencies file for pimsim.
# This may be replaced when dependencies are built.
