file(REMOVE_RECURSE
  "CMakeFiles/spt_switchover.dir/spt_switchover.cpp.o"
  "CMakeFiles/spt_switchover.dir/spt_switchover.cpp.o.d"
  "spt_switchover"
  "spt_switchover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spt_switchover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
