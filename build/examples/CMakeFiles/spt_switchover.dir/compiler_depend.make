# Empty compiler generated dependencies file for spt_switchover.
# This may be replaced when dependencies are built.
