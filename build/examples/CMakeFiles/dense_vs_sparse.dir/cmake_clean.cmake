file(REMOVE_RECURSE
  "CMakeFiles/dense_vs_sparse.dir/dense_vs_sparse.cpp.o"
  "CMakeFiles/dense_vs_sparse.dir/dense_vs_sparse.cpp.o.d"
  "dense_vs_sparse"
  "dense_vs_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_vs_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
