# Empty compiler generated dependencies file for dense_vs_sparse.
# This may be replaced when dependencies are built.
