
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/wide_area_conference.cpp" "examples/CMakeFiles/wide_area_conference.dir/wide_area_conference.cpp.o" "gcc" "examples/CMakeFiles/wide_area_conference.dir/wide_area_conference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimlib_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_dvmrp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_cbt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_mospf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_unicast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
