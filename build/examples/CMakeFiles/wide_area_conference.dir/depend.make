# Empty dependencies file for wide_area_conference.
# This may be replaced when dependencies are built.
