file(REMOVE_RECURSE
  "CMakeFiles/wide_area_conference.dir/wide_area_conference.cpp.o"
  "CMakeFiles/wide_area_conference.dir/wide_area_conference.cpp.o.d"
  "wide_area_conference"
  "wide_area_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
