file(REMOVE_RECURSE
  "CMakeFiles/rp_failover.dir/rp_failover.cpp.o"
  "CMakeFiles/rp_failover.dir/rp_failover.cpp.o.d"
  "rp_failover"
  "rp_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
