# Empty compiler generated dependencies file for rp_failover.
# This may be replaced when dependencies are built.
