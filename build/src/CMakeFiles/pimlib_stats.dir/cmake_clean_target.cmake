file(REMOVE_RECURSE
  "libpimlib_stats.a"
)
