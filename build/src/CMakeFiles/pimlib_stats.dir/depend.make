# Empty dependencies file for pimlib_stats.
# This may be replaced when dependencies are built.
