file(REMOVE_RECURSE
  "CMakeFiles/pimlib_stats.dir/stats/counters.cpp.o"
  "CMakeFiles/pimlib_stats.dir/stats/counters.cpp.o.d"
  "libpimlib_stats.a"
  "libpimlib_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
