file(REMOVE_RECURSE
  "libpimlib_igmp.a"
)
