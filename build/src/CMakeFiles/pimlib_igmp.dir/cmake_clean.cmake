file(REMOVE_RECURSE
  "CMakeFiles/pimlib_igmp.dir/igmp/host_agent.cpp.o"
  "CMakeFiles/pimlib_igmp.dir/igmp/host_agent.cpp.o.d"
  "CMakeFiles/pimlib_igmp.dir/igmp/messages.cpp.o"
  "CMakeFiles/pimlib_igmp.dir/igmp/messages.cpp.o.d"
  "CMakeFiles/pimlib_igmp.dir/igmp/router_agent.cpp.o"
  "CMakeFiles/pimlib_igmp.dir/igmp/router_agent.cpp.o.d"
  "libpimlib_igmp.a"
  "libpimlib_igmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_igmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
