
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/igmp/host_agent.cpp" "src/CMakeFiles/pimlib_igmp.dir/igmp/host_agent.cpp.o" "gcc" "src/CMakeFiles/pimlib_igmp.dir/igmp/host_agent.cpp.o.d"
  "/root/repo/src/igmp/messages.cpp" "src/CMakeFiles/pimlib_igmp.dir/igmp/messages.cpp.o" "gcc" "src/CMakeFiles/pimlib_igmp.dir/igmp/messages.cpp.o.d"
  "/root/repo/src/igmp/router_agent.cpp" "src/CMakeFiles/pimlib_igmp.dir/igmp/router_agent.cpp.o" "gcc" "src/CMakeFiles/pimlib_igmp.dir/igmp/router_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimlib_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
