# Empty dependencies file for pimlib_igmp.
# This may be replaced when dependencies are built.
