# Empty compiler generated dependencies file for pimlib_pim.
# This may be replaced when dependencies are built.
