file(REMOVE_RECURSE
  "libpimlib_pim.a"
)
