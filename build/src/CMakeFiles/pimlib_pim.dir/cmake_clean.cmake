file(REMOVE_RECURSE
  "CMakeFiles/pimlib_pim.dir/pim/messages.cpp.o"
  "CMakeFiles/pimlib_pim.dir/pim/messages.cpp.o.d"
  "CMakeFiles/pimlib_pim.dir/pim/pim_dm.cpp.o"
  "CMakeFiles/pimlib_pim.dir/pim/pim_dm.cpp.o.d"
  "CMakeFiles/pimlib_pim.dir/pim/pim_sm.cpp.o"
  "CMakeFiles/pimlib_pim.dir/pim/pim_sm.cpp.o.d"
  "CMakeFiles/pimlib_pim.dir/pim/rp_set.cpp.o"
  "CMakeFiles/pimlib_pim.dir/pim/rp_set.cpp.o.d"
  "libpimlib_pim.a"
  "libpimlib_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
