file(REMOVE_RECURSE
  "CMakeFiles/pimlib_trace.dir/trace/tracer.cpp.o"
  "CMakeFiles/pimlib_trace.dir/trace/tracer.cpp.o.d"
  "libpimlib_trace.a"
  "libpimlib_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
