file(REMOVE_RECURSE
  "libpimlib_trace.a"
)
