# Empty dependencies file for pimlib_trace.
# This may be replaced when dependencies are built.
