
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/center_tree.cpp" "src/CMakeFiles/pimlib_graph.dir/graph/center_tree.cpp.o" "gcc" "src/CMakeFiles/pimlib_graph.dir/graph/center_tree.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/pimlib_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/pimlib_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/random_graph.cpp" "src/CMakeFiles/pimlib_graph.dir/graph/random_graph.cpp.o" "gcc" "src/CMakeFiles/pimlib_graph.dir/graph/random_graph.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/CMakeFiles/pimlib_graph.dir/graph/shortest_path.cpp.o" "gcc" "src/CMakeFiles/pimlib_graph.dir/graph/shortest_path.cpp.o.d"
  "/root/repo/src/graph/tree_metrics.cpp" "src/CMakeFiles/pimlib_graph.dir/graph/tree_metrics.cpp.o" "gcc" "src/CMakeFiles/pimlib_graph.dir/graph/tree_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
