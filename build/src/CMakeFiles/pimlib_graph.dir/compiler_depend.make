# Empty compiler generated dependencies file for pimlib_graph.
# This may be replaced when dependencies are built.
