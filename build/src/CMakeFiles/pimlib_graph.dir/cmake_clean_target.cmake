file(REMOVE_RECURSE
  "libpimlib_graph.a"
)
