file(REMOVE_RECURSE
  "CMakeFiles/pimlib_graph.dir/graph/center_tree.cpp.o"
  "CMakeFiles/pimlib_graph.dir/graph/center_tree.cpp.o.d"
  "CMakeFiles/pimlib_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/pimlib_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/pimlib_graph.dir/graph/random_graph.cpp.o"
  "CMakeFiles/pimlib_graph.dir/graph/random_graph.cpp.o.d"
  "CMakeFiles/pimlib_graph.dir/graph/shortest_path.cpp.o"
  "CMakeFiles/pimlib_graph.dir/graph/shortest_path.cpp.o.d"
  "CMakeFiles/pimlib_graph.dir/graph/tree_metrics.cpp.o"
  "CMakeFiles/pimlib_graph.dir/graph/tree_metrics.cpp.o.d"
  "libpimlib_graph.a"
  "libpimlib_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
