file(REMOVE_RECURSE
  "libpimlib_dvmrp.a"
)
