file(REMOVE_RECURSE
  "CMakeFiles/pimlib_dvmrp.dir/dvmrp/dvmrp.cpp.o"
  "CMakeFiles/pimlib_dvmrp.dir/dvmrp/dvmrp.cpp.o.d"
  "libpimlib_dvmrp.a"
  "libpimlib_dvmrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_dvmrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
