# Empty compiler generated dependencies file for pimlib_dvmrp.
# This may be replaced when dependencies are built.
