# Empty compiler generated dependencies file for pimlib_mospf.
# This may be replaced when dependencies are built.
