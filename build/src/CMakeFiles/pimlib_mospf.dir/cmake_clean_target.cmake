file(REMOVE_RECURSE
  "libpimlib_mospf.a"
)
