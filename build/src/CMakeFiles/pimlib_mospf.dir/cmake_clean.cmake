file(REMOVE_RECURSE
  "CMakeFiles/pimlib_mospf.dir/mospf/mospf.cpp.o"
  "CMakeFiles/pimlib_mospf.dir/mospf/mospf.cpp.o.d"
  "libpimlib_mospf.a"
  "libpimlib_mospf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_mospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
