file(REMOVE_RECURSE
  "libpimlib_scenario.a"
)
