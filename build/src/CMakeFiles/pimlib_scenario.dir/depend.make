# Empty dependencies file for pimlib_scenario.
# This may be replaced when dependencies are built.
