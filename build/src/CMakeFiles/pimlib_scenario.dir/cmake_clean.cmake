file(REMOVE_RECURSE
  "CMakeFiles/pimlib_scenario.dir/scenario/stacks.cpp.o"
  "CMakeFiles/pimlib_scenario.dir/scenario/stacks.cpp.o.d"
  "libpimlib_scenario.a"
  "libpimlib_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
