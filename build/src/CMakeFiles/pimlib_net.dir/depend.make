# Empty dependencies file for pimlib_net.
# This may be replaced when dependencies are built.
