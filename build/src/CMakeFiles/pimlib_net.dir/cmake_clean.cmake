file(REMOVE_RECURSE
  "CMakeFiles/pimlib_net.dir/net/buffer.cpp.o"
  "CMakeFiles/pimlib_net.dir/net/buffer.cpp.o.d"
  "CMakeFiles/pimlib_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/pimlib_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/pimlib_net.dir/net/packet.cpp.o"
  "CMakeFiles/pimlib_net.dir/net/packet.cpp.o.d"
  "libpimlib_net.a"
  "libpimlib_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
