file(REMOVE_RECURSE
  "libpimlib_net.a"
)
