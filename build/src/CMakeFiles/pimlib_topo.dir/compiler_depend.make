# Empty compiler generated dependencies file for pimlib_topo.
# This may be replaced when dependencies are built.
