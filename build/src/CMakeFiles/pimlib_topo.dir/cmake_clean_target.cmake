file(REMOVE_RECURSE
  "libpimlib_topo.a"
)
