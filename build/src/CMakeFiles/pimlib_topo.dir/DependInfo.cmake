
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/builder.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/builder.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/builder.cpp.o.d"
  "/root/repo/src/topo/host.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/host.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/host.cpp.o.d"
  "/root/repo/src/topo/network.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/network.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/network.cpp.o.d"
  "/root/repo/src/topo/node.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/node.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/node.cpp.o.d"
  "/root/repo/src/topo/router.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/router.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/router.cpp.o.d"
  "/root/repo/src/topo/segment.cpp" "src/CMakeFiles/pimlib_topo.dir/topo/segment.cpp.o" "gcc" "src/CMakeFiles/pimlib_topo.dir/topo/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimlib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
