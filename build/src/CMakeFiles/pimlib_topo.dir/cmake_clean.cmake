file(REMOVE_RECURSE
  "CMakeFiles/pimlib_topo.dir/topo/builder.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/builder.cpp.o.d"
  "CMakeFiles/pimlib_topo.dir/topo/host.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/host.cpp.o.d"
  "CMakeFiles/pimlib_topo.dir/topo/network.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/network.cpp.o.d"
  "CMakeFiles/pimlib_topo.dir/topo/node.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/node.cpp.o.d"
  "CMakeFiles/pimlib_topo.dir/topo/router.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/router.cpp.o.d"
  "CMakeFiles/pimlib_topo.dir/topo/segment.cpp.o"
  "CMakeFiles/pimlib_topo.dir/topo/segment.cpp.o.d"
  "libpimlib_topo.a"
  "libpimlib_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
