file(REMOVE_RECURSE
  "CMakeFiles/pimlib_mcast.dir/mcast/forwarding_cache.cpp.o"
  "CMakeFiles/pimlib_mcast.dir/mcast/forwarding_cache.cpp.o.d"
  "CMakeFiles/pimlib_mcast.dir/mcast/forwarding_entry.cpp.o"
  "CMakeFiles/pimlib_mcast.dir/mcast/forwarding_entry.cpp.o.d"
  "libpimlib_mcast.a"
  "libpimlib_mcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
