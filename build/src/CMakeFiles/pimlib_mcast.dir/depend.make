# Empty dependencies file for pimlib_mcast.
# This may be replaced when dependencies are built.
