file(REMOVE_RECURSE
  "libpimlib_mcast.a"
)
