# Empty compiler generated dependencies file for pimlib_cbt.
# This may be replaced when dependencies are built.
