file(REMOVE_RECURSE
  "CMakeFiles/pimlib_cbt.dir/cbt/cbt.cpp.o"
  "CMakeFiles/pimlib_cbt.dir/cbt/cbt.cpp.o.d"
  "libpimlib_cbt.a"
  "libpimlib_cbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_cbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
