
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cbt/cbt.cpp" "src/CMakeFiles/pimlib_cbt.dir/cbt/cbt.cpp.o" "gcc" "src/CMakeFiles/pimlib_cbt.dir/cbt/cbt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimlib_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_unicast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimlib_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
