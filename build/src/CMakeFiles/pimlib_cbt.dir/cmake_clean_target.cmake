file(REMOVE_RECURSE
  "libpimlib_cbt.a"
)
