# Empty dependencies file for pimlib_unicast.
# This may be replaced when dependencies are built.
