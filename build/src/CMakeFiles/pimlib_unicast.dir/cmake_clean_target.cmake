file(REMOVE_RECURSE
  "libpimlib_unicast.a"
)
