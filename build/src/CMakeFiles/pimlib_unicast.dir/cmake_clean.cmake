file(REMOVE_RECURSE
  "CMakeFiles/pimlib_unicast.dir/unicast/distance_vector.cpp.o"
  "CMakeFiles/pimlib_unicast.dir/unicast/distance_vector.cpp.o.d"
  "CMakeFiles/pimlib_unicast.dir/unicast/link_state.cpp.o"
  "CMakeFiles/pimlib_unicast.dir/unicast/link_state.cpp.o.d"
  "CMakeFiles/pimlib_unicast.dir/unicast/oracle_routing.cpp.o"
  "CMakeFiles/pimlib_unicast.dir/unicast/oracle_routing.cpp.o.d"
  "CMakeFiles/pimlib_unicast.dir/unicast/rib.cpp.o"
  "CMakeFiles/pimlib_unicast.dir/unicast/rib.cpp.o.d"
  "libpimlib_unicast.a"
  "libpimlib_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
