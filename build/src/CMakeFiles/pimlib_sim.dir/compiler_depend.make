# Empty compiler generated dependencies file for pimlib_sim.
# This may be replaced when dependencies are built.
