file(REMOVE_RECURSE
  "libpimlib_sim.a"
)
