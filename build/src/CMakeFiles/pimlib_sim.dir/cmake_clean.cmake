file(REMOVE_RECURSE
  "CMakeFiles/pimlib_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/pimlib_sim.dir/sim/simulator.cpp.o.d"
  "libpimlib_sim.a"
  "libpimlib_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimlib_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
